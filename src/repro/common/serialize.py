"""Stable serialization helpers for configs, specs and cache keys.

The persistent result cache (:mod:`repro.experiments.engine`) keys entries
by a content hash of everything that can influence a simulation's outcome.
That only works if serialization is *canonical*: the same object always
produces the same bytes, across processes and Python versions. Hence:

* :func:`canonical_json` — sorted keys, no whitespace, no NaN;
* :func:`stable_hash` — sha256 over the canonical JSON;
* :func:`dataclass_from_dict` — the inverse of :func:`dataclasses.asdict`
  for the (nested, frozen) dataclasses used in this codebase;
* :func:`load_structured_file` — the one TOML/JSON file loader shared by
  every declarative input (sweep files, scenario specs).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import types
import typing
from pathlib import Path
from typing import Any, Dict, Type, TypeVar

T = TypeVar("T")

_UNION_TYPES = (typing.Union, getattr(types, "UnionType", typing.Union))


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding: sorted keys, minimal separators."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def stable_hash(obj: Any) -> str:
    """Hex sha256 of the canonical JSON encoding of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def load_structured_file(path) -> Dict[str, Any]:
    """Load a ``.toml`` or ``.json`` file into a plain dict.

    The declarative inputs (sweeps, scenario specs) accept either syntax;
    dispatch is by file suffix so error messages stay precise.
    """
    path = Path(path)
    text = path.read_text()
    suffix = path.suffix.lower()
    if suffix == ".toml":
        try:
            import tomllib
        except ImportError:          # Python < 3.11
            try:
                import tomli as tomllib    # type: ignore[no-redef]
            except ImportError:
                raise RuntimeError(
                    f"TOML files need Python 3.11+ (tomllib) or the tomli "
                    f"package; rewrite {path.name} as .json")
        data = tomllib.loads(text)
    elif suffix == ".json":
        data = json.loads(text)
    else:
        raise ValueError(
            f"unsupported file type {path.suffix!r} for {path.name} "
            f"(expected .toml or .json)")
    if not isinstance(data, dict):
        raise ValueError(f"{path.name}: top level must be a table/object")
    return data


def _build(field_type: Any, value: Any) -> Any:
    """Recursively rebuild ``value`` according to ``field_type``."""
    origin = typing.get_origin(field_type)
    if origin in _UNION_TYPES:           # Optional[X] and friends
        args = [a for a in typing.get_args(field_type) if a is not type(None)]
        if value is None:
            return None
        if len(args) == 1:
            return _build(args[0], value)
        return value
    if origin in (tuple, list):
        args = typing.get_args(field_type)
        if args and args[-1] is Ellipsis:        # Tuple[X, ...]
            elem = args[0]
            items = [_build(elem, v) for v in value]
        elif args:
            items = [_build(t, v) for t, v in zip(args, value)]
        else:
            items = list(value)
        return tuple(items) if origin is tuple else items
    if dataclasses.is_dataclass(field_type) and isinstance(value, dict):
        return dataclass_from_dict(field_type, value)
    return value


def dataclass_from_dict(cls: Type[T], data: Dict[str, Any]) -> T:
    """Rebuild a (possibly nested) dataclass from ``dataclasses.asdict``
    output.

    Bare ``tuple`` annotations (e.g. ``WorkloadSpec.kernels``) cannot name
    their element type, so callers needing typed elements should override
    ``from_dict`` on that class (as :class:`WorkloadSpec` does).
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    hints = typing.get_type_hints(cls)
    kwargs = {}
    for field in dataclasses.fields(cls):
        if field.name not in data:
            continue                     # fall back to the field default
        kwargs[field.name] = _build(hints[field.name], data[field.name])
    return cls(**kwargs)
