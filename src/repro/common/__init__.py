"""Shared infrastructure: configuration, statistics, math helpers."""

from repro.common.config import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    DramConfig,
    MemoryConfig,
    SchedPolicyConfig,
    SimConfig,
)
from repro.common.mathutil import clamp, geomean, is_pow2, log2_int
from repro.common.stats import SimStats

__all__ = [
    "BranchPredictorConfig",
    "CacheConfig",
    "CoreConfig",
    "DramConfig",
    "MemoryConfig",
    "SchedPolicyConfig",
    "SimConfig",
    "SimStats",
    "clamp",
    "geomean",
    "is_pow2",
    "log2_int",
]
