"""Simulator configuration — a faithful encoding of the paper's Table 1.

The default :class:`SimConfig` reproduces the baseline machine of Perais et
al. (ISCA 2015): an aggressive 4 GHz, 8-wide-frontend / 6-issue superscalar
with a 192-entry ROB, 60-entry unified IQ, banked 32KB L1D, 1MB L2 with a
stride prefetcher, and a DDR3-1600-like memory with a 75-cycle minimum read
latency.

Configurations differ along three axes explored by the paper:

* ``issue_to_execute_delay`` (the paper's *issue-to-execute delay*, 0-6);
* whether scheduling is speculative (``SchedPolicyConfig.speculative``) and
  which replay-avoidance mechanisms are enabled (shifting / hit-miss
  filtering / criticality);
* whether the L1D is banked (bank conflicts possible) or ideally
  dual-ported.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Dict

from repro.common.mathutil import is_pow2
from repro.common.serialize import dataclass_from_dict, stable_hash

#: Fetch-to-commit latency of the Baseline_0 machine (Section 3.1).
FETCH_TO_COMMIT_CYCLES = 19
#: Frontend depth of the Baseline_0 machine (Section 3.1).
BASE_FRONTEND_DEPTH = 15
#: Minimum branch misprediction penalty kept constant across delays.
BRANCH_MISS_PENALTY = 20


@dataclass(frozen=True)
class BranchPredictorConfig:
    """TAGE-lite predictor + BTB + RAS (Table 1 front end)."""

    num_tagged_tables: int = 6
    table_entries: int = 1024
    tag_bits: int = 11
    min_history: int = 4
    max_history: int = 128
    bimodal_entries: int = 8192
    use_alt_threshold: int = 8
    btb_entries: int = 8192
    btb_ways: int = 2
    ras_entries: int = 32

    def validate(self) -> None:
        if self.num_tagged_tables < 1:
            raise ValueError("TAGE needs at least one tagged table")
        if not is_pow2(self.table_entries) or not is_pow2(self.bimodal_entries):
            raise ValueError("predictor table sizes must be powers of two")
        if self.min_history < 1 or self.max_history <= self.min_history:
            raise ValueError("invalid TAGE history range")
        if not is_pow2(self.btb_entries):
            raise ValueError("BTB entries must be a power of two")


@dataclass(frozen=True)
class CacheConfig:
    """One level of a set-associative, LRU, 64B-line cache."""

    name: str = "L1D"
    size_bytes: int = 32 * 1024
    assoc: int = 8
    line_bytes: int = 64
    latency: int = 4          # load-to-use for L1D; access latency otherwise
    mshrs: int = 64
    banks: int = 8            # quadword-interleaved data banks (L1D only)
    banked: bool = True       # False models the ideal dual-ported L1D
    read_ports: int = 2
    write_ports: int = 2

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)

    def validate(self) -> None:
        if self.size_bytes % (self.line_bytes * self.assoc) != 0:
            raise ValueError(f"{self.name}: size not divisible by line*assoc")
        if not is_pow2(self.num_sets):
            raise ValueError(f"{self.name}: number of sets must be a power of two")
        if not is_pow2(self.line_bytes):
            raise ValueError(f"{self.name}: line size must be a power of two")
        if self.banks and not is_pow2(self.banks):
            raise ValueError(f"{self.name}: bank count must be a power of two")
        if self.latency < 1:
            raise ValueError(f"{self.name}: latency must be >= 1")


@dataclass(frozen=True)
class DramConfig:
    """Single-channel DDR3-1600-like memory, calibrated to Table 1.

    The paper quotes a 75-cycle minimum and 185-cycle maximum read latency
    at 4 GHz. We model per-bank open-page row buffers: a row hit pays
    ``base_latency``; a row miss additionally pays ``row_miss_penalty``;
    queueing behind the shared data bus adds ``bus_cycles`` per in-flight
    access.
    """

    ranks: int = 2
    banks_per_rank: int = 8
    row_bytes: int = 8192
    base_latency: int = 75        # controller + tCL + burst, CPU cycles
    row_miss_penalty: int = 55    # tRP + tRCD at 11-11-11, CPU cycles
    bus_cycles: int = 20          # 64B over an 8B DDR3-1600 bus at 4 GHz
    max_latency: int = 185

    @property
    def num_banks(self) -> int:
        return self.ranks * self.banks_per_rank

    def validate(self) -> None:
        if self.base_latency < 1 or self.row_miss_penalty < 0:
            raise ValueError("invalid DRAM latencies")
        if not is_pow2(self.row_bytes):
            raise ValueError("row size must be a power of two")
        if self.max_latency < self.base_latency:
            raise ValueError("max_latency below base_latency")


@dataclass(frozen=True)
class MemoryConfig:
    """L1D + L2 + DRAM (Table 1, Caches & Memory rows)."""

    l1d: CacheConfig = field(default_factory=CacheConfig)
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L2", size_bytes=1024 * 1024, assoc=16, latency=13,
            mshrs=64, banks=0, banked=False,
        )
    )
    dram: DramConfig = field(default_factory=DramConfig)
    prefetcher_degree: int = 8     # L2 stride prefetcher, degree 8
    prefetcher_table_entries: int = 256

    def validate(self) -> None:
        self.l1d.validate()
        self.l2.validate()
        self.dram.validate()
        if self.prefetcher_degree < 0:
            raise ValueError("prefetcher degree must be >= 0")


@dataclass(frozen=True)
class CoreConfig:
    """Pipeline dimensions (Table 1, Front End & Execution rows)."""

    fetch_width: int = 8
    decode_width: int = 8
    rename_width: int = 8
    issue_width: int = 6
    retire_width: int = 8
    rob_entries: int = 192
    iq_entries: int = 60
    lq_entries: int = 72
    sq_entries: int = 48
    int_prf: int = 256
    fp_prf: int = 256
    num_alu: int = 4
    num_muldiv: int = 1
    num_fp: int = 2
    num_fpmuldiv: int = 2
    num_load_ports: int = 2
    num_store_ports: int = 1
    issue_to_execute_delay: int = 4
    store_set_ssid_entries: int = 1024
    store_set_lfst_entries: int = 1024

    @property
    def frontend_depth(self) -> int:
        """Frontend depth shrinks as the issue-to-execute delay grows.

        Section 3.1: Baseline_0 has a 15-cycle frontend and 4-cycle backend;
        Baseline_6 has a 9-cycle frontend and 10-cycle backend, keeping the
        minimum branch misprediction penalty at 20 cycles.
        """
        return BASE_FRONTEND_DEPTH - self.issue_to_execute_delay

    def validate(self) -> None:
        if not 0 <= self.issue_to_execute_delay <= 12:
            raise ValueError("issue-to-execute delay out of modeled range")
        if self.frontend_depth < 1:
            raise ValueError("frontend depth must remain >= 1")
        if self.issue_width < 1 or self.fetch_width < 1:
            raise ValueError("pipeline widths must be >= 1")
        if self.rob_entries < self.iq_entries:
            raise ValueError("ROB smaller than IQ makes no sense")
        if self.num_load_ports < 1:
            raise ValueError("need at least one load port")


class HitMissPolicy:
    """Symbolic names for the load hit/miss speculation policies (§5.2)."""

    ALWAYS_HIT = "always_hit"
    GLOBAL_CTR = "global_ctr"
    FILTER_CTR = "filter_ctr"

    ALL = (ALWAYS_HIT, GLOBAL_CTR, FILTER_CTR)


@dataclass(frozen=True)
class SchedPolicyConfig:
    """Which speculative-scheduling mechanisms are active (Sections 4-5)."""

    speculative: bool = True            # False => Baseline_* (conservative)
    hit_miss: str = HitMissPolicy.ALWAYS_HIT
    schedule_shifting: bool = False
    criticality: bool = False
    # Global counter (Alpha 21264 style): 4-bit, -2 on miss cycle, +1 otherwise.
    global_ctr_bits: int = 4
    global_ctr_dec: int = 2
    global_ctr_inc: int = 1
    # Per-PC filter: 2K entries of 2-bit counters + silence bit.
    filter_entries: int = 2048
    filter_ctr_bits: int = 2
    filter_reset_interval: int = 10_000   # committed loads between silence resets
    filter_silence_bit: bool = True       # False = plain-counter ablation (§5.2)
    # Criticality predictor: 8K entries of 4-bit signed counters.
    crit_entries: int = 8192
    crit_ctr_bits: int = 4

    def validate(self) -> None:
        if self.hit_miss not in HitMissPolicy.ALL:
            raise ValueError(f"unknown hit/miss policy {self.hit_miss!r}")
        if not is_pow2(self.filter_entries) or not is_pow2(self.crit_entries):
            raise ValueError("predictor table sizes must be powers of two")
        if self.criticality and not self.speculative:
            raise ValueError("criticality gating requires speculative scheduling")
        if self.global_ctr_bits < 2 or self.filter_ctr_bits < 1:
            raise ValueError("counter widths too small")


@dataclass(frozen=True)
class SimConfig:
    """Top-level simulator configuration (the whole of Table 1)."""

    name: str = "SpecSched_4"
    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    sched: SchedPolicyConfig = field(default_factory=SchedPolicyConfig)

    def validate(self) -> "SimConfig":
        self.core.validate()
        self.memory.validate()
        self.branch.validate()
        self.sched.validate()
        return self

    # -- derived helpers -------------------------------------------------

    @property
    def delay(self) -> int:
        """The paper's issue-to-execute delay, e.g. 4 for SpecSched_4."""
        return self.core.issue_to_execute_delay

    def with_(self, **top_level_fields: Any) -> "SimConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **top_level_fields)

    def with_core(self, **core_fields: Any) -> "SimConfig":
        return replace(self, core=replace(self.core, **core_fields))

    def with_sched(self, **sched_fields: Any) -> "SimConfig":
        return replace(self, sched=replace(self.sched, **sched_fields))

    def with_l1d(self, **l1d_fields: Any) -> "SimConfig":
        mem = replace(self.memory, l1d=replace(self.memory.l1d, **l1d_fields))
        return replace(self, memory=mem)

    def describe(self) -> Dict[str, Any]:
        """Flat description used by the Table-1 renderer."""
        return dataclasses.asdict(self)

    # -- serialization (persistent result cache, sweep files) -------------

    def to_dict(self) -> Dict[str, Any]:
        """Lossless plain-dict encoding; inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimConfig":
        return dataclass_from_dict(cls, data)

    def content_hash(self) -> str:
        """Stable hex digest over every field; any difference in any
        (nested) field yields a different hash."""
        return stable_hash(self.to_dict())
