"""Small numeric helpers used throughout the simulator."""

from __future__ import annotations

import math
from typing import Iterable


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    The paper reports all averaged speedups as geometric means (Section 5).

    Raises:
        ValueError: if ``values`` is empty or contains a non-positive entry.
    """
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    acc = 0.0
    for v in vals:
        if v <= 0.0:
            raise ValueError(f"geomean requires positive values, got {v}")
        acc += math.log(v)
    return math.exp(acc / len(vals))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises ValueError on an empty sequence."""
    vals = list(values)
    if not vals:
        raise ValueError("mean of empty sequence")
    return sum(vals) / len(vals)


def sample_stdev(values: Iterable[float]) -> float:
    """Bessel-corrected sample standard deviation (0.0 below 2 samples)."""
    vals = list(values)
    n = len(vals)
    if n < 2:
        return 0.0
    mu = sum(vals) / n
    return math.sqrt(sum((v - mu) ** 2 for v in vals) / (n - 1))


def ci95_half_width(values: Iterable[float]) -> float:
    """Half-width of the normal-approximation 95% confidence interval on
    the mean: ``1.96 * s / sqrt(n)``.

    The sampling layer reports interval-mean IPC this way (SMARTS
    Section 3 does the same); with the small interval counts used in CI
    runs the normal z is a mild underestimate of the t quantile — treat
    tight margins accordingly.
    """
    vals = list(values)
    n = len(vals)
    if n < 2:
        return 0.0
    return 1.96 * sample_stdev(vals) / math.sqrt(n)


def clamp(value: int, lo: int, hi: int) -> int:
    """Clamp ``value`` into the inclusive range [lo, hi]."""
    if lo > hi:
        raise ValueError(f"empty clamp range [{lo}, {hi}]")
    return lo if value < lo else hi if value > hi else value


def is_pow2(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_int(n: int) -> int:
    """Exact integer log2; ``n`` must be a power of two."""
    if not is_pow2(n):
        raise ValueError(f"{n} is not a power of two")
    return n.bit_length() - 1
