"""Small numeric helpers used throughout the simulator."""

from __future__ import annotations

import math
from typing import Iterable


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    The paper reports all averaged speedups as geometric means (Section 5).

    Raises:
        ValueError: if ``values`` is empty or contains a non-positive entry.
    """
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    acc = 0.0
    for v in vals:
        if v <= 0.0:
            raise ValueError(f"geomean requires positive values, got {v}")
        acc += math.log(v)
    return math.exp(acc / len(vals))


def clamp(value: int, lo: int, hi: int) -> int:
    """Clamp ``value`` into the inclusive range [lo, hi]."""
    if lo > hi:
        raise ValueError(f"empty clamp range [{lo}, {hi}]")
    return lo if value < lo else hi if value > hi else value


def is_pow2(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_int(n: int) -> int:
    """Exact integer log2; ``n`` must be a power of two."""
    if not is_pow2(n):
        raise ValueError(f"{n} is not a power of two")
    return n.bit_length() - 1
