"""repro — Cost-Effective Speculative Scheduling in High Performance
Processors (Perais et al., ISCA 2015), reproduced as a Python library.

Quickstart::

    from repro import run_workload

    base = run_workload("xalancbmk", "SpecSched_4")
    crit = run_workload("xalancbmk", "SpecSched_4_Crit")
    print(crit.ipc / base.ipc, crit.stats.replayed_total,
          base.stats.replayed_total)

Public surface:

* configurations — :class:`SimConfig`, :func:`make_config` and the
  ``Baseline_*`` / ``SpecSched_*`` preset grammar;
* workloads — the 36-entry synthetic :data:`SUITE` (Table 2 analogue);
* simulation — :class:`Simulator` (cycle-level core) and the
  :func:`run_workload` convenience runner;
* mechanisms — :class:`HitMissFilter`, :class:`GlobalHitMissCounter`,
  :class:`CriticalityPredictor`, :class:`ScheduleShifter` for standalone
  study;
* experiments — :mod:`repro.experiments` regenerates every figure/table.
"""

from repro.common.config import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    DramConfig,
    HitMissPolicy,
    MemoryConfig,
    SchedPolicyConfig,
    SimConfig,
)
from repro.common.stats import CAUSE_BANK_CONFLICT, CAUSE_L1_MISS, SimStats
from repro.core.criticality import CriticalityPredictor
from repro.core.global_ctr import GlobalHitMissCounter
from repro.core.hm_filter import FilterPrediction, HitMissFilter
from repro.core.presets import PRESET_NAMES, make_config, preset_names
from repro.core.shifting import ScheduleShifter
from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp
from repro.pipeline.cpu import SimulationError, Simulator
from repro.pipeline.sim import RunResult, run_config, run_workload
from repro.workloads.suite import DEFAULT_SUBSET, SUITE, get_workload

__version__ = "1.0.0"

__all__ = [
    "BranchPredictorConfig",
    "CAUSE_BANK_CONFLICT",
    "CAUSE_L1_MISS",
    "CacheConfig",
    "CoreConfig",
    "CriticalityPredictor",
    "DEFAULT_SUBSET",
    "DramConfig",
    "FilterPrediction",
    "GlobalHitMissCounter",
    "HitMissFilter",
    "HitMissPolicy",
    "MemoryConfig",
    "MicroOp",
    "OpClass",
    "PRESET_NAMES",
    "RunResult",
    "SUITE",
    "SchedPolicyConfig",
    "ScheduleShifter",
    "SimConfig",
    "SimStats",
    "SimulationError",
    "Simulator",
    "get_workload",
    "make_config",
    "preset_names",
    "run_config",
    "run_workload",
]
