"""The CI perf gate: compare a fresh result against a committed baseline.

The committed ``benchmarks/baseline.json`` holds one :class:`BenchResult`
per benchmark. :func:`check_regression` compares each of the benchmark's
*gated metrics* (:data:`GATE_SPECS`) against the baseline's and reports a
failure when any moved past its limit in the bad direction.

Each gated metric carries a direction: throughputs (µops/sec) are
*higher-is-better*; error and overhead metrics (sampling's
``mean_ipc_rel_err``, telemetry's ``overhead_ratio``) are
*lower-is-better* and gate in the opposite sense. A lower-is-better
metric may additionally carry an absolute ceiling — a bound the metric
must not exceed no matter what the committed baseline says, so a bad
value can never be ratified by committing it.

Machine-speed metrics are normalized by each run's calibration figure
(see :func:`repro.perf.bench.calibrate`), which is what lets a
laptop-recorded baseline gate a CI runner: raw µops/sec track the
machine, the ratio tracks the simulator. Metrics that are already
machine-neutral ratios (two wall times on the same machine) skip the
normalization — dividing by calibration would *introduce* machine
dependence instead of removing it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.perf.bench import BENCH_SCHEMA, BenchResult

#: Directions a gated metric can prefer.
HIGHER, LOWER = "higher", "lower"


@dataclass(frozen=True)
class GateSpec:
    """How one metric of one benchmark is gated."""

    metric: str
    #: Which way is good: ``higher`` (throughput) or ``lower`` (error,
    #: overhead).
    direction: str = HIGHER
    #: Divide by the run's calibration figure before comparing
    #: (machine-speed metrics only; ratios compare raw).
    normalize: bool = True
    #: Lower-is-better only: absolute ceiling enforced regardless of the
    #: baseline value.
    ceiling: Optional[float] = None


#: The gated metrics per benchmark, primary metric first (the primary is
#: what the CLI prints as the benchmark's headline number).
GATE_SPECS: Dict[str, Tuple[GateSpec, ...]] = {
    "headline": (GateSpec("uops_per_sec"),),
    "table2": (GateSpec("uops_per_sec"),),
    "trace": (GateSpec("replay_uops_per_sec"),),
    "sampling": (
        # The sampled-vs-detailed wall-clock ratio: a regression here
        # means sampling lost its reason to exist, whatever the machine.
        GateSpec("speedup", normalize=False),
        # And the accuracy that makes the speedup honest: sampled IPC
        # within 2% of the detailed run, as an absolute floor on quality
        # (ROADMAP: sampling accuracy gate).
        GateSpec("mean_ipc_rel_err", direction=LOWER, normalize=False, ceiling=0.02),
        # Checkpoint-chained cells vs from-zero cells: the warming-cost
        # ratio the chained compilation exists for. A machine-free wall
        # ratio, so raw; regressing toward 1.0 means chaining stopped
        # paying for its checkpoint traffic.
        GateSpec("cell_speedup", normalize=False),
        # The speedup is only admissible while the two modes simulate
        # the same thing; any mismatching (preset, workload) cell voids
        # it outright.
        GateSpec("cell_mode_mismatches", direction=LOWER, normalize=False, ceiling=0.0),
    ),
    "telemetry": (
        # Events-off throughput: building with the telemetry seams in
        # place must cost nothing (gated like every other throughput).
        GateSpec("events_off_uops_per_sec"),
        # Events-on cost, as a same-machine wall ratio: recording every
        # pipeline event may cost at most 2x.
        GateSpec("overhead_ratio", direction=LOWER, normalize=False, ceiling=2.0),
    ),
    "warming": (
        # Scalar-vs-vectorized wall ratio on the warming span: a
        # regression here means the vectorized tier lost its reason to
        # exist, whatever the machine.
        GateSpec("speedup", normalize=False),
        # The equality that makes the speedup admissible: every cell's
        # vectorized checkpoint digest must equal the scalar one.
        # Ceiling 0 — a mismatch can never be ratified by committing it.
        GateSpec("digest_mismatches", direction=LOWER, normalize=False, ceiling=0.0),
    ),
}

#: Benchmark -> primary gated metric (back-compat view of
#: :data:`GATE_SPECS`; the CLI's headline-number lookup).
GATED_METRICS: Dict[str, str] = {name: specs[0].metric for name, specs in GATE_SPECS.items()}

#: Metrics that are machine-neutral ratios (see module docstring) —
#: derived from :data:`GATE_SPECS`, kept as a set for introspection.
RATIO_METRICS = frozenset(
    spec.metric for specs in GATE_SPECS.values() for spec in specs if not spec.normalize
)


@dataclass(frozen=True)
class GateFailure:
    """One gated metric that moved past its limit in the bad direction."""

    benchmark: str
    metric: str
    baseline: float  # normalized baseline value
    current: float  # normalized current value
    ratio: float  # goodness ratio (1.0 = exactly baseline)
    limit: float  # minimum acceptable goodness ratio
    absolute: bool = False  # tripped the absolute ceiling, not the ratio

    def __str__(self) -> str:
        if self.absolute:
            return (
                f"{self.benchmark}: {self.metric} at {self.current:.4f} "
                f"exceeds the absolute ceiling {self.limit:.4f}"
            )
        return (
            f"{self.benchmark}: {self.metric} at {self.ratio:.2f}x of "
            f"baseline (limit {self.limit:.2f}x) — "
            f"normalized {self.current:.4g} vs {self.baseline:.4g}"
        )


def _normalized(result: BenchResult, spec: GateSpec) -> float:
    value = result.metrics.get(spec.metric, 0.0)
    if not spec.normalize:
        return value
    calibration = result.calibration_ops_per_sec
    return value / calibration if calibration > 0 else value


def _check_metric(
    current: BenchResult, baseline: BenchResult, spec: GateSpec, max_regression: float
) -> List[GateFailure]:
    cur_value = _normalized(current, spec)
    failures: List[GateFailure] = []
    if spec.ceiling is not None and cur_value > spec.ceiling:
        failures.append(
            GateFailure(
                benchmark=current.name,
                metric=spec.metric,
                baseline=_normalized(baseline, spec),
                current=cur_value,
                ratio=0.0,
                limit=spec.ceiling,
                absolute=True,
            )
        )
    base_value = _normalized(baseline, spec)
    if base_value <= 0.0:
        return failures  # no baseline to gate the ratio against
    # Goodness ratio: > 1 improved, < 1 regressed — whichever way the
    # metric points.
    if spec.direction == LOWER:
        ratio = base_value / cur_value if cur_value > 0 else float("inf")
    else:
        ratio = cur_value / base_value
    limit = 1.0 - max_regression
    if ratio < limit:
        failures.append(
            GateFailure(
                benchmark=current.name,
                metric=spec.metric,
                baseline=base_value,
                current=cur_value,
                ratio=ratio,
                limit=limit,
            )
        )
    return failures


def check_regression(
    current: BenchResult, baseline: BenchResult, max_regression: float = 0.2
) -> List[GateFailure]:
    """Empty list when every gated metric of ``current`` is within
    ``max_regression`` of ``baseline`` (and under its absolute ceiling,
    where one is declared)."""
    if current.name != baseline.name:
        raise ValueError(
            f"comparing benchmark {current.name!r} against baseline for "
            f"{baseline.name!r}")
    if current.quick != baseline.quick:
        raise ValueError(
            f"benchmark {current.name!r}: quick={current.quick} run cannot "
            f"be gated against a quick={baseline.quick} baseline (volumes "
            f"differ)")
    specs = GATE_SPECS.get(current.name, (GateSpec("uops_per_sec"),))
    failures: List[GateFailure] = []
    for spec in specs:
        failures.extend(_check_metric(current, baseline, spec, max_regression))
    return failures


# ---------------------------------------------------------------------------
# Baseline files: {"schema": 1, "results": {name: BenchResult dict}}


def write_baseline(results: Dict[str, BenchResult], path) -> Path:
    path = Path(path)
    payload = {
        "schema": BENCH_SCHEMA,
        "results": {name: result.to_dict() for name, result in results.items()},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def read_baseline(path) -> Dict[str, BenchResult]:
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except ValueError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict) or not isinstance(data.get("results"), dict):
        raise ValueError(f"{path}: not a baseline file " f"(expected an object with 'results')")
    if data.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: baseline schema {data.get('schema')} (this build " f"reads {BENCH_SCHEMA})"
        )
    return {name: BenchResult.from_dict(entry) for name, entry in data["results"].items()}
