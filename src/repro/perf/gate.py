"""The CI perf gate: compare a fresh result against a committed baseline.

The committed ``benchmarks/baseline.json`` holds one :class:`BenchResult`
per benchmark. :func:`check_regression` compares the *gated metric* of a
fresh run against the baseline's, normalized by each run's calibration
figure (see :func:`repro.perf.bench.calibrate`), and reports a failure
when the normalized throughput dropped by more than ``max_regression``.

Normalization is what lets a laptop-recorded baseline gate a CI runner:
raw µops/sec track the machine, the ratio tracks the simulator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

from repro.perf.bench import BENCH_SCHEMA, BenchResult

#: Which metric gates each benchmark.
GATED_METRICS: Dict[str, str] = {
    "headline": "uops_per_sec",
    "table2": "uops_per_sec",
    "trace": "replay_uops_per_sec",
    # The sampled-vs-detailed wall-clock ratio: a regression here means
    # sampling lost its reason to exist, whatever the machine speed.
    "sampling": "speedup",
}


@dataclass(frozen=True)
class GateFailure:
    """One benchmark whose gated metric regressed past the limit."""

    benchmark: str
    metric: str
    baseline: float           # normalized baseline value
    current: float            # normalized current value
    ratio: float              # current / baseline
    limit: float              # minimum acceptable ratio

    def __str__(self) -> str:
        return (f"{self.benchmark}: {self.metric} at {self.ratio:.2f}x of "
                f"baseline (limit {self.limit:.2f}x) — "
                f"normalized {self.current:.1f} vs {self.baseline:.1f}")


#: Metrics that are already machine-neutral ratios (two wall times on
#: the same machine): dividing by the calibration figure would
#: *introduce* machine dependence instead of removing it.
RATIO_METRICS = frozenset({"speedup"})


def _normalized(result: BenchResult, metric: str) -> float:
    value = result.metrics.get(metric, 0.0)
    if metric in RATIO_METRICS:
        return value
    calibration = result.calibration_ops_per_sec
    return value / calibration if calibration > 0 else value


def check_regression(current: BenchResult, baseline: BenchResult,
                     max_regression: float = 0.2) -> List[GateFailure]:
    """Empty list when ``current`` is within ``max_regression`` of
    ``baseline`` on the benchmark's gated metric."""
    if current.name != baseline.name:
        raise ValueError(
            f"comparing benchmark {current.name!r} against baseline for "
            f"{baseline.name!r}")
    if current.quick != baseline.quick:
        raise ValueError(
            f"benchmark {current.name!r}: quick={current.quick} run cannot "
            f"be gated against a quick={baseline.quick} baseline (volumes "
            f"differ)")
    metric = GATED_METRICS.get(current.name, "uops_per_sec")
    base_value = _normalized(baseline, metric)
    if base_value <= 0.0:
        return []           # nothing to gate against
    cur_value = _normalized(current, metric)
    limit = 1.0 - max_regression
    ratio = cur_value / base_value
    if ratio < limit:
        return [GateFailure(benchmark=current.name, metric=metric,
                            baseline=base_value, current=cur_value,
                            ratio=ratio, limit=limit)]
    return []


# ---------------------------------------------------------------------------
# Baseline files: {"schema": 1, "results": {name: BenchResult dict}}


def write_baseline(results: Dict[str, BenchResult], path) -> Path:
    path = Path(path)
    payload = {"schema": BENCH_SCHEMA,
               "results": {name: result.to_dict()
                           for name, result in results.items()}}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def read_baseline(path) -> Dict[str, BenchResult]:
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except ValueError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict) or not isinstance(
            data.get("results"), dict):
        raise ValueError(f"{path}: not a baseline file "
                         f"(expected an object with 'results')")
    if data.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: baseline schema {data.get('schema')} (this build "
            f"reads {BENCH_SCHEMA})")
    return {name: BenchResult.from_dict(entry)
            for name, entry in data["results"].items()}
