"""Lightweight cycle-loop instrumentation.

A :class:`PhaseProfile` accumulates wall-clock seconds per pipeline phase
plus a few event counters. The simulator only pays for it when one is
attached (:meth:`repro.pipeline.cpu.Simulator` swaps in an instrumented
``step`` at construction); the default hot loop has zero instrumentation
overhead — not even a branch.

Phases are the machine's stages, timed in tick order: one bucket per
entry of :data:`repro.pipeline.stages.TICK_ORDER` (``commit``,
``writeback``, ``execute``, ``wakeup``, ``issue``, ``rename``,
``fetch``, ``bookkeep``). Custom stages inserted through
``extra_stages`` get their own buckets on first tick — a profiled
``--metrics`` run shows the telemetry probes' cost as its own line
(e.g. ``telemetry_occupancy``), keeping "how much does observing cost"
answerable with the same tool as every other phase question.
"""

from __future__ import annotations

from typing import Dict

from repro.pipeline.stages import TICK_ORDER

#: Canonical phase order (also the reporting order) — the stage tick
#: order, so the breakdown always matches the wired machine.
PHASES = TICK_ORDER


class PhaseProfile:
    """Per-phase wall time + cycle-loop event counters.

    ``seconds`` maps phase name -> accumulated wall seconds; ``cycles``
    counts instrumented cycles so per-cycle costs can be derived. The
    replay-storm counter tracks squash events observed while profiling
    (they are the classic cause of pathological simulation slowdowns:
    every storm re-arms the waiting population).
    """

    __slots__ = ("seconds", "cycles", "replay_storms", "uops_committed")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        self.cycles = 0
        self.replay_storms = 0
        self.uops_committed = 0

    # -- accumulation (called from the instrumented step) ---------------

    def add(self, phase: str, seconds: float) -> None:
        # .get(): custom stages (extra_stages) get a bucket on first use.
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds

    def merge(self, other: "PhaseProfile") -> None:
        for phase, seconds in other.seconds.items():
            self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.cycles += other.cycles
        self.replay_storms += other.replay_storms
        self.uops_committed += other.uops_committed

    # -- reporting -------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> Dict[str, float]:
        """Phase -> share of total instrumented time (0 when untimed)."""
        total = self.total_seconds
        if total <= 0.0:
            return {phase: 0.0 for phase in self.seconds}
        return {phase: seconds / total for phase, seconds in self.seconds.items()}

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready flat view (seconds per phase + counters)."""
        out: Dict[str, float] = {
            f"{phase}_seconds": seconds for phase, seconds in self.seconds.items()
        }
        out["cycles"] = self.cycles
        out["replay_storms"] = self.replay_storms
        out["uops_committed"] = self.uops_committed
        return out

    def summary(self) -> str:
        """One line per phase, largest share first."""
        fractions = self.fractions()
        rows = sorted(self.seconds.items(), key=lambda kv: -kv[1])
        # Custom stage names (telemetry_occupancy, ...) run longer than
        # the built-in phases; keep the columns aligned for any mix.
        width = max(10, *(len(phase) for phase in self.seconds))
        lines = [
            f"  {phase:{width}s} {seconds:8.3f}s  " f"{fractions[phase]:6.1%}"
            for phase, seconds in rows
        ]
        lines.append(f"  {'cycles':{width}s} {self.cycles}")
        lines.append(f"  {'storms':{width}s} {self.replay_storms}")
        return "\n".join(lines)
