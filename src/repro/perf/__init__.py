"""Performance subsystem: instrumentation, benchmarks, regression gates.

Three layers, bottom-up:

* :mod:`repro.perf.instrument` — a :class:`PhaseProfile` that the
  simulator fills with per-stage wall time (one bucket per entry of the
  pipeline tick order, ``docs/ARCHITECTURE.md``) and event counters
  (replay storms). Attaching one swaps :meth:`Simulator.step` for an
  instrumented twin; with none attached the hot loop is untouched.
* :mod:`repro.perf.bench` — the benchmark definitions (headline /
  table2 / trace / sampling), the :class:`BenchResult` JSON schema with provenance
  (git sha, python, host), and ``write_result`` producing the
  ``BENCH_<name>.json`` trajectory files.
* :mod:`repro.perf.gate` — the regression check the CI perf gate runs:
  compare a fresh result against a committed baseline, normalized by
  each run's interpreter-speed calibration so the gate measures the
  *simulator*, not the runner hardware.

Everything is reachable from the CLI: ``repro bench`` runs the suite,
writes the JSON files and (with ``--baseline``) enforces the gate.
"""

from repro.perf.bench import (
    BENCHMARKS,
    BenchResult,
    bench_filename,
    calibrate,
    run_benchmark,
    write_result,
)
from repro.perf.gate import GateFailure, check_regression
from repro.perf.instrument import PhaseProfile

__all__ = [
    "BENCHMARKS",
    "BenchResult",
    "GateFailure",
    "PhaseProfile",
    "bench_filename",
    "calibrate",
    "check_regression",
    "run_benchmark",
    "write_result",
]
