"""Benchmark definitions and the ``BenchResult`` trajectory schema.

A *benchmark* here measures simulator **throughput** (µops simulated per
wall second), not simulated performance — the IPC the cells produce is
already covered by the figure suite and the golden tests. The
benchmarks track the hot paths that matter:

* ``headline`` — the paper's Figure-8 grid (Baseline_0 + SpecSched_4 +
  _Combined + _Crit), the sweep every headline number derives from;
* ``table2``  — Baseline_0 across the workload set (the pure in-order
  frontend / OoO backend loop without replay machinery);
* ``trace``   — binary-trace capture and replay-decode throughput of the
  :mod:`repro.traces.format` reader feeding the front end;
* ``sampling`` — SMARTS-sampled vs full-detailed wall clock (+ the
  sampled IPC's relative error) on the headline grid;
* ``telemetry`` — the cost of observation: events-off throughput (the
  seams must be free) and the events-on overhead ratio;
* ``warming`` — scalar vs vectorized functional-warming throughput on
  recorded traces over the sampling benchmark's warming span, plus the
  checkpoint-digest equality that makes the speedup admissible.

Every run produces a :class:`BenchResult` with provenance (git sha,
python version, host) and a *calibration* figure — a fixed pure-Python
spin loop timed on the same interpreter — so two results from different
machines can be compared as ``uops_per_sec / calibration`` ratios. The
``repro bench`` CLI writes each result to ``BENCH_<name>.json``; the
regression gate lives in :mod:`repro.perf.gate`.

Cells always run serially with the result cache bypassed: a benchmark
that serves cached stats measures nothing.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.common.stats import SimStats
from repro.experiments.engine import cell_payload, simulate_payload
from repro.experiments.figures import fig8_sweep
from repro.experiments.runner import Settings
from repro.perf.instrument import PhaseProfile
from repro.traces.format import FileTrace, capture
from repro.traces.registry import resolve_workload

#: Bumped when the BenchResult JSON layout changes.
BENCH_SCHEMA = 1

#: Workloads for ``--quick`` runs: one high-IPC, one miss-heavy, one
#: bank-conflict-prone, one high-IPC *and* high-miss.
QUICK_WORKLOADS: Tuple[str, ...] = ("gzip", "mcf", "swim", "xalancbmk")

#: Volumes for ``--quick`` runs (fixed: quick results must be comparable
#: across runs regardless of REPRO_* scaling knobs).
QUICK_SETTINGS = Settings(
    workloads=QUICK_WORKLOADS,
    warmup_uops=1_000,
    measure_uops=8_000,
    functional_warmup_uops=20_000,
    seed=1,
)

#: µops captured/decoded by the ``trace`` benchmark.
TRACE_BENCH_UOPS = 60_000
TRACE_BENCH_UOPS_QUICK = 40_000

#: The ``sampling`` benchmark's fig8-style series (baseline + the
#: paper's combined mechanism stacks — the headline configurations).
SAMPLING_PRESETS: Tuple[str, ...] = ("Baseline_0", "SpecSched_4_Combined", "SpecSched_4_Crit")
SAMPLING_PRESETS_QUICK: Tuple[str, ...] = ("Baseline_0", "SpecSched_4_Combined")
SAMPLING_WORKLOADS_QUICK: Tuple[str, ...] = ("gzip", "mcf")

#: The ``telemetry`` benchmark's configuration: a replaying preset, so
#: the instrumented stages' replay/squash/filter emission points are all
#: actually exercised.
TELEMETRY_PRESET = "SpecSched_4_Combined"
TELEMETRY_WORKLOADS_QUICK: Tuple[str, ...] = ("gzip", "mcf")

#: The ``warming`` benchmark's grid and per-cell stream span. The span
#: equals the full sampling benchmark's ``SamplingSpec.span_uops`` — the
#: stretch of stream functional warming covers per cell when sampling
#: runs the fig8 grid — in quick mode too: a shorter span would measure
#: per-block fixed costs instead of the warming tiers, so quick runs
#: shrink only the grid.
WARMING_PRESETS: Tuple[str, ...] = SAMPLING_PRESETS
WARMING_PRESETS_QUICK: Tuple[str, ...] = SAMPLING_PRESETS_QUICK
WARMING_WORKLOADS_QUICK: Tuple[str, ...] = SAMPLING_WORKLOADS_QUICK
WARMING_SPAN_UOPS = 321_300


# ---------------------------------------------------------------------------
# Result schema


@dataclass
class BenchResult:
    """One benchmark run: metrics + provenance, JSON round-trippable."""

    name: str
    metrics: Dict[str, float]
    provenance: Dict[str, Any]
    quick: bool = False
    calibration_ops_per_sec: float = 0.0
    phases: Dict[str, float] = field(default_factory=dict)
    schema: int = BENCH_SCHEMA

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchResult":
        if not isinstance(data, dict):
            raise ValueError("bench result must be a JSON object")
        unknown = set(data) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(f"unknown bench result fields: {sorted(unknown)}")
        for required in ("name", "metrics"):
            if required not in data:
                raise ValueError(f"bench result missing {required!r}")
        if data.get("schema", BENCH_SCHEMA) != BENCH_SCHEMA:
            raise ValueError(
                f"bench result schema {data.get('schema')} (this build " f"reads {BENCH_SCHEMA})"
            )
        if not isinstance(data["metrics"], dict):
            raise ValueError("bench result metrics must be an object")
        return cls(
            name=data["name"],
            metrics={k: float(v) for k, v in data["metrics"].items()},
            provenance=dict(data.get("provenance") or {}),
            quick=bool(data.get("quick", False)),
            calibration_ops_per_sec=float(data.get("calibration_ops_per_sec", 0.0)),
            phases=dict(data.get("phases") or {}),
        )

    # -- persistence -----------------------------------------------------

    def write(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def read(cls, path) -> "BenchResult":
        try:
            data = json.loads(Path(path).read_text())
        except ValueError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from exc
        return cls.from_dict(data)


def bench_filename(name: str) -> str:
    """The trajectory file a benchmark writes: ``BENCH_<name>.json``."""
    return f"BENCH_{name}.json"


def write_result(result: BenchResult, out_dir=".") -> Path:
    return result.write(Path(out_dir) / bench_filename(result.name))


# ---------------------------------------------------------------------------
# Provenance + calibration


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def provenance(settings: Settings) -> Dict[str, Any]:
    """Everything needed to interpret a result later: code + machine."""
    return {
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "host": platform.node() or "unknown",
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workloads": list(settings.workloads),
        "warmup_uops": settings.warmup_uops,
        "measure_uops": settings.measure_uops,
        "functional_warmup_uops": settings.functional_warmup_uops,
        "seed": settings.seed,
    }


def _spin(n: int) -> int:
    x = 0
    for i in range(n):
        x = (x * 31 + i) & 0xFFFFFFFF
    return x


def calibrate(target_seconds: float = 0.2) -> float:
    """Interpreter-speed reference: ops/sec of a fixed pure-Python loop.

    Committed baselines carry this figure so the CI gate can compare
    ``uops_per_sec / calibration`` *ratios* — a slower CI runner scales
    both numerator and denominator, a slower simulator only the first.
    The collector is kept out of the loop for the same reason as in
    :func:`bench_trace`: a GC pause inside a 0.2s window is pure noise.
    """
    import gc

    chunk = 100_000
    ops = 0
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        deadline = start + target_seconds
        while True:
            _spin(chunk)
            ops += chunk
            now = time.perf_counter()
            if now >= deadline:
                return ops / (now - start)
    finally:
        if gc_was_enabled:
            gc.enable()


# ---------------------------------------------------------------------------
# Benchmark bodies


def _settings(quick: bool) -> Settings:
    return QUICK_SETTINGS if quick else Settings.from_env()


def _run_grid(
    sweep_settings: Settings, series, profile: Optional[PhaseProfile]
) -> Dict[str, float]:
    """Simulate a (series x workloads) grid serially; throughput metrics."""
    resolved = {name: resolve_workload(name) for name in sweep_settings.workloads}
    payloads = []
    for request in series:
        for name in sweep_settings.workloads:
            payloads.append(
                cell_payload(
                    request.preset,
                    resolved[name],
                    banked=request.banked,
                    load_ports=request.load_ports,
                    warmup_uops=sweep_settings.warmup_uops,
                    measure_uops=sweep_settings.measure_uops,
                    functional_warmup_uops=sweep_settings.functional_warmup_uops,
                    seed=sweep_settings.seed,
                )
            )
    committed = 0
    cycles = 0
    start = time.perf_counter()
    for payload in payloads:
        stats = SimStats.from_dict(simulate_payload(payload, phase_profile=profile))
        committed += stats.committed_uops
        cycles += stats.cycles
    elapsed = time.perf_counter() - start
    return {
        "uops_per_sec": committed / elapsed if elapsed else 0.0,
        "cycles_per_sec": cycles / elapsed if elapsed else 0.0,
        "wall_seconds": elapsed,
        "cells": float(len(payloads)),
        "committed_uops": float(committed),
        "cycles": float(cycles),
    }


def bench_headline(quick: bool, profile: Optional[PhaseProfile] = None) -> BenchResult:
    """The Figure-8 grid — the sweep behind every headline number."""
    settings = _settings(quick)
    metrics = _run_grid(settings, fig8_sweep().series, profile)
    return _finish("headline", metrics, settings, quick, profile)


def bench_table2(quick: bool, profile: Optional[PhaseProfile] = None) -> BenchResult:
    """Baseline_0 across the workload set (no replay machinery)."""
    from repro.experiments.figures import BASELINE

    settings = _settings(quick)
    metrics = _run_grid(settings, [BASELINE], profile)
    return _finish("table2", metrics, settings, quick, profile)


def bench_trace(quick: bool, profile: Optional[PhaseProfile] = None) -> BenchResult:
    """Binary-trace capture + replay-decode throughput."""
    settings = _settings(quick)
    uops = TRACE_BENCH_UOPS_QUICK if quick else TRACE_BENCH_UOPS
    workload = resolve_workload(settings.workloads[0])
    fd, path = tempfile.mkstemp(suffix=".trc")
    os.close(fd)
    # The timed regions are fractions of a second and allocate one µop
    # object per record: on a large heap (mid-test-suite, long-lived
    # sessions) generational GC pauses land inside them stochastically
    # and swing the quick metric by ±20% — past the CI gate's limit all
    # by themselves. Collect once up front, then keep the collector out
    # of the measurement.
    import gc

    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        info = capture(workload.build_trace(settings.seed), path, uops, wp_seed=settings.seed)
        record_elapsed = time.perf_counter() - start
        # Decode through FileTrace.next_uop — the exact replay path that
        # feeds the frontend (batched frame decode), so the gated metric
        # moves when that path does. Best of two passes: the pass is
        # ~0.1s, and the faster one is the less noise-biased estimate of
        # the code's actual speed (this is the gated metric).
        decode_elapsed = float("inf")
        for _ in range(2):
            replay = FileTrace(path)
            start = time.perf_counter()
            decoded = 0
            while replay.next_uop() is not None:
                decoded += 1
            decode_elapsed = min(decode_elapsed, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
        try:
            os.unlink(path)
        except OSError:
            pass
    metrics = {
        "record_uops_per_sec": (info.uop_count / record_elapsed if record_elapsed else 0.0),
        "replay_uops_per_sec": (decoded / decode_elapsed if decode_elapsed else 0.0),
        "wall_seconds": record_elapsed + decode_elapsed,
        "uops": float(info.uop_count),
        "file_bytes": float(info.file_bytes),
    }
    return _finish("trace", metrics, settings, quick, profile)


def bench_sampling(quick: bool, profile: Optional[PhaseProfile] = None) -> BenchResult:
    """Sampled vs full-detailed throughput on the headline grid.

    For each (preset, Table-2 workload) cell the same stream span is
    simulated twice: fully detailed (the reference — every µop through
    the OoO backend) and SMARTS-sampled (functional fast-forward +
    detailed measurement intervals, the chained single-pass shape).
    Metrics record the wall-clock speedup and the sampled IPC's relative
    error against the detailed region IPC — the two numbers that decide
    whether sampling is usable for headline results.

    The per-interval *cell* compilation is timed twice more: legacy
    cells (every interval functionally fast-forwards from µop zero —
    quadratic total warming across the span) against checkpoint-chained
    cells (one linear warming walk, checkpointed per interval, timed
    *including* checkpoint production into a throwaway store).
    ``cell_speedup`` is the legacy/chained wall ratio; the two modes'
    interval counters are asserted bit-identical so the speedup cannot
    come from simulating something different.
    """
    from repro.checkpoint.sampling import (
        SamplingSpec,
        run_sampled,
        run_sampled_cells_chained,
        run_sampled_chained,
    )
    from repro.experiments.engine import EngineOptions

    settings = _settings(quick)
    if quick:
        presets = SAMPLING_PRESETS_QUICK
        workloads = SAMPLING_WORKLOADS_QUICK
        spec = SamplingSpec(
            intervals=6, interval_uops=1_000, warmup_uops=250, period_uops=5_000, offset_uops=10_000
        )
    else:
        # A ~320k-µop span per cell: long-trace territory, where the
        # linear-in-cycles detailed cost is what sampling exists to
        # break. 16 intervals keep phase aliasing (xalancbmk) inside
        # the error budget; tuning history in tests/checkpoint.
        presets = SAMPLING_PRESETS
        workloads = QUICK_WORKLOADS  # the diverse Table-2 subset
        spec = SamplingSpec(
            intervals=16,
            interval_uops=1_000,
            warmup_uops=300,
            period_uops=20_000,
            offset_uops=20_000,
        )
    resolved = {name: resolve_workload(name) for name in workloads}
    span = spec.span_uops
    # Serial, cache off: the cell-mode passes must time simulation, not
    # cache hits or pool scheduling.
    serial = EngineOptions(jobs=1, cache_dir="off")
    detailed_wall = 0.0
    sampled_wall = 0.0
    cells_legacy_wall = 0.0
    cells_chained_wall = 0.0
    mode_mismatches = 0
    errors = []
    for preset in presets:
        for name in workloads:
            payload = cell_payload(
                preset,
                resolved[name],
                warmup_uops=spec.offset_uops,
                measure_uops=span - spec.offset_uops,
                functional_warmup_uops=0,
                seed=settings.seed,
            )
            start = time.perf_counter()
            detailed = SimStats.from_dict(simulate_payload(payload, phase_profile=profile))
            detailed_wall += time.perf_counter() - start
            start = time.perf_counter()
            sampled = run_sampled_chained(resolved[name], preset, spec, seed=settings.seed)
            sampled_wall += time.perf_counter() - start
            if detailed.ipc:
                errors.append(abs(sampled.mean_ipc - detailed.ipc) / detailed.ipc)
            start = time.perf_counter()
            legacy = run_sampled(resolved[name], preset, spec,
                                 seed=settings.seed, options=serial)
            cells_legacy_wall += time.perf_counter() - start
            start = time.perf_counter()
            chained_cells = run_sampled_cells_chained(
                resolved[name], preset, spec, seed=settings.seed,
                options=serial)
            cells_chained_wall += time.perf_counter() - start
            if ([s.to_dict() for s in legacy.interval_stats]
                    != [s.to_dict() for s in chained_cells.interval_stats]):
                mode_mismatches += 1
    # Provenance records what actually ran (the sampled grid), not the
    # REPRO_* sweep volumes this benchmark ignores.
    settings = Settings(
        workloads=tuple(workloads),
        warmup_uops=spec.warmup_uops,
        measure_uops=spec.interval_uops,
        functional_warmup_uops=spec.offset_uops,
        seed=settings.seed,
    )
    cells = float(len(presets) * len(workloads))
    metrics = {
        "speedup": detailed_wall / sampled_wall if sampled_wall else 0.0,
        "detailed_wall_seconds": detailed_wall,
        "sampled_wall_seconds": sampled_wall,
        "chained_wall_seconds": sampled_wall,
        "cells_legacy_wall_seconds": cells_legacy_wall,
        "cells_chained_wall_seconds": cells_chained_wall,
        "cell_speedup": (cells_legacy_wall / cells_chained_wall
                         if cells_chained_wall else 0.0),
        "cell_mode_mismatches": float(mode_mismatches),
        "wall_seconds": (detailed_wall + sampled_wall
                         + cells_legacy_wall + cells_chained_wall),
        "mean_ipc_rel_err": sum(errors) / len(errors) if errors else 0.0,
        "max_ipc_rel_err": max(errors) if errors else 0.0,
        "cells": cells,
        "span_uops": float(span),
        "detailed_uops_per_interval_cell": float(spec.detailed_uops),
        "detailed_uops_per_sec": (cells * span / detailed_wall if detailed_wall else 0.0),
        "sampled_span_uops_per_sec": (cells * span / sampled_wall if sampled_wall else 0.0),
    }
    return _finish("sampling", metrics, settings, quick, profile)


def bench_telemetry(quick: bool, profile: Optional[PhaseProfile] = None) -> BenchResult:
    """Telemetry cost: the same cells with event recording off and on.

    The events-off pass runs the plain stage classes — the telemetry
    seams must cost nothing, so its ``events_off_uops_per_sec`` is gated
    like any other throughput. The events-on pass wires the full metrics
    kit (aggregator sink on the event bus + occupancy probe) through
    :class:`~repro.telemetry.probes.MetricsCollector`; its cost relative
    to the off pass is ``overhead_ratio``, gated against an absolute 2x
    ceiling — a same-machine wall ratio, deliberately *not* calibrated.
    """
    from repro.telemetry import EventBus, MetricsCollector

    settings = _settings(quick)
    workloads = TELEMETRY_WORKLOADS_QUICK if quick else QUICK_WORKLOADS
    resolved = {name: resolve_workload(name) for name in workloads}
    payloads = [cell_payload(
        TELEMETRY_PRESET, resolved[name],
        warmup_uops=settings.warmup_uops,
        measure_uops=settings.measure_uops,
        functional_warmup_uops=settings.functional_warmup_uops,
        seed=settings.seed) for name in workloads]
    # Same GC discipline as bench_trace: the instrumented pass allocates
    # per-event, so a collection landing inside either timed region
    # would swing the ratio — the gated metric — by itself.
    import gc

    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        committed = 0
        events = 0
        off_wall = 0.0
        on_wall = 0.0
        for payload in payloads:
            start = time.perf_counter()
            stats = SimStats.from_dict(simulate_payload(payload, phase_profile=profile))
            off_wall += time.perf_counter() - start
            committed += stats.committed_uops
            collector = MetricsCollector(EventBus())
            start = time.perf_counter()
            simulate_payload(payload, collector=collector)
            on_wall += time.perf_counter() - start
            events += sum(collector.aggregator.counts.values())
    finally:
        if gc_was_enabled:
            gc.enable()
    metrics = {
        "events_off_uops_per_sec": committed / off_wall if off_wall else 0.0,
        "events_on_uops_per_sec": committed / on_wall if on_wall else 0.0,
        "overhead_ratio": on_wall / off_wall if off_wall else 0.0,
        "events_per_sec": events / on_wall if on_wall else 0.0,
        "events": float(events),
        "wall_seconds": off_wall + on_wall,
        "cells": float(len(payloads)),
        "committed_uops": float(committed),
    }
    settings = Settings(
        workloads=tuple(workloads),
        warmup_uops=settings.warmup_uops,
        measure_uops=settings.measure_uops,
        functional_warmup_uops=settings.functional_warmup_uops,
        seed=settings.seed,
    )
    return _finish("telemetry", metrics, settings, quick, profile)


def bench_warming(quick: bool, profile: Optional[PhaseProfile] = None) -> BenchResult:
    """Scalar vs vectorized functional warming on recorded traces.

    For each (preset, workload) cell one recorded trace of the warming
    span is replayed twice through :meth:`Simulator.fast_forward` — once
    per warming tier — on a fresh simulator each time. Each tier is
    timed best-of-two (fresh simulator per pass; the first pass absorbs
    cold numpy dispatch), and the final machine state of each tier is
    checkpointed so the digests can be compared: the speedup is only
    admissible while ``digest_mismatches`` is zero, which the CI gate
    enforces as an absolute ceiling. Requires numpy (the vectorized
    tier refuses to resolve without it).
    """
    from repro.checkpoint.format import checkpoint_digest, save_checkpoint
    from repro.core.presets import make_config
    from repro.pipeline.cpu import Simulator
    from repro.pipeline.warming import resolve_mode

    resolve_mode("vectorized")  # fail fast when numpy is missing
    settings = _settings(quick)
    presets = WARMING_PRESETS_QUICK if quick else WARMING_PRESETS
    workloads = (WARMING_WORKLOADS_QUICK if quick else QUICK_WORKLOADS)
    span = WARMING_SPAN_UOPS
    resolved = {name: resolve_workload(name) for name in workloads}

    walls = {"scalar": 0.0, "vectorized": 0.0}
    mismatches = 0
    cells = 0
    # Same GC discipline as bench_trace: a collection landing inside a
    # timed pass would swing the gated speedup by itself.
    import gc

    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    with tempfile.TemporaryDirectory() as tmp:
        try:
            for name in workloads:
                trace_path = os.path.join(tmp, f"{name}.trc")
                capture(
                    resolved[name].build_trace(settings.seed),
                    trace_path,
                    span,
                    wp_seed=settings.seed,
                )
                for preset in presets:
                    cells += 1
                    digests = {}
                    for mode in ("scalar", "vectorized"):
                        best = float("inf")
                        for _ in range(2):
                            sim = Simulator(make_config(preset), FileTrace(trace_path))
                            start = time.perf_counter()
                            sim.fast_forward(span, mode=mode)
                            best = min(best, time.perf_counter() - start)
                        walls[mode] += best
                        ckpt = os.path.join(tmp, f"{mode}.ckpt")
                        save_checkpoint(sim, ckpt)
                        digests[mode] = checkpoint_digest(ckpt)
                    if digests["scalar"] != digests["vectorized"]:
                        mismatches += 1
        finally:
            if gc_was_enabled:
                gc.enable()
    scalar_wall = walls["scalar"]
    vectorized_wall = walls["vectorized"]
    total_uops = float(cells * span)
    metrics = {
        "speedup": (scalar_wall / vectorized_wall if vectorized_wall else 0.0),
        "digest_mismatches": float(mismatches),
        "scalar_uops_per_sec": (total_uops / scalar_wall if scalar_wall else 0.0),
        "vectorized_uops_per_sec": (total_uops / vectorized_wall if vectorized_wall else 0.0),
        "scalar_wall_seconds": scalar_wall,
        "vectorized_wall_seconds": vectorized_wall,
        "wall_seconds": scalar_wall + vectorized_wall,
        "cells": float(cells),
        "span_uops": float(span),
    }
    settings = Settings(
        workloads=tuple(workloads),
        warmup_uops=0,
        measure_uops=0,
        functional_warmup_uops=span,
        seed=settings.seed,
    )
    return _finish("warming", metrics, settings, quick, profile)


def _finish(
    name: str,
    metrics: Dict[str, float],
    settings: Settings,
    quick: bool,
    profile: Optional[PhaseProfile],
) -> BenchResult:
    return BenchResult(
        name=name,
        metrics=metrics,
        provenance=provenance(settings),
        quick=quick,
        calibration_ops_per_sec=calibrate(),
        phases=profile.as_dict() if profile is not None else {},
    )


#: name -> runner. Order is the default execution order.
BENCHMARKS: Dict[str, Callable[..., BenchResult]] = {
    "headline": bench_headline,
    "table2": bench_table2,
    "trace": bench_trace,
    "sampling": bench_sampling,
    "telemetry": bench_telemetry,
    "warming": bench_warming,
}


def run_benchmark(name: str, quick: bool = False, profile: bool = False) -> BenchResult:
    """Run one benchmark by name (KeyError on unknown names)."""
    if name not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: "
            f"{', '.join(BENCHMARKS)}")
    phase_profile = PhaseProfile() if profile else None
    return BENCHMARKS[name](quick, phase_profile)
