"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Downstream closed the pipe (e.g. `repro report ... | head`):
    # normal shell usage, not an error. Swallow the late flush too.
    devnull = os.open(os.devnull, os.O_WRONLY)
    os.dup2(devnull, sys.stdout.fileno())
    sys.exit(0)
