"""Register alias table."""

from __future__ import annotations

from typing import List


class RegisterAliasTable:
    """Architectural -> physical register map with explicit undo support.

    Rollback is driven by the ROB walk: every renamed µop remembers
    ``(dst, prev_pdst)``; squashing restores mappings youngest-first.
    """

    def __init__(self, num_arch_regs: int) -> None:
        self.num_arch_regs = num_arch_regs
        self._map: List[int] = [-1] * num_arch_regs

    def lookup(self, arch: int) -> int:
        preg = self._map[arch]
        if preg < 0:
            raise KeyError(f"architectural register {arch} never mapped")
        return preg

    def set(self, arch: int, preg: int) -> int:
        """Map ``arch`` to ``preg``; returns the previous mapping."""
        prev = self._map[arch]
        self._map[arch] = preg
        return prev

    def restore(self, arch: int, prev_preg: int) -> None:
        """Undo one rename during a squash walk."""
        self._map[arch] = prev_preg

    def snapshot(self) -> List[int]:
        return list(self._map)

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        return {"map": list(self._map)}

    def load_state_dict(self, state: dict) -> None:
        self._map = list(state["map"])
