"""Physical-register free list."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable


class FreeList:
    """FIFO free list over a fixed physical-register range.

    Registers ``[base, base + count)`` belong to this pool; the first
    ``reserved`` of them are handed out immediately as the initial
    architectural mappings and never start on the list.
    """

    def __init__(self, base: int, count: int, reserved: int = 0) -> None:
        if reserved > count:
            raise ValueError("cannot reserve more registers than exist")
        self.base = base
        self.count = count
        self._free: Deque[int] = deque(range(base + reserved, base + count))

    def __len__(self) -> int:
        return len(self._free)

    @property
    def empty(self) -> bool:
        return not self._free

    def allocate(self) -> int:
        """Pop a free register; raises IndexError when exhausted."""
        return self._free.popleft()

    def release(self, preg: int) -> None:
        """Return a register to the pool."""
        if not self.base <= preg < self.base + self.count:
            raise ValueError(f"preg {preg} not in pool [{self.base}, "
                             f"{self.base + self.count})")
        self._free.append(preg)

    def release_many(self, pregs: Iterable[int]) -> None:
        for preg in pregs:
            self.release(preg)

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        return {"free": list(self._free)}

    def load_state_dict(self, state: dict) -> None:
        self._free = deque(state["free"])
