"""Register renaming: RAT, free lists, squash rollback."""

from repro.rename.freelist import FreeList
from repro.rename.rat import RegisterAliasTable
from repro.rename.rename import NUM_ARCH_REGS, FP_REG_BASE, RegisterRenamer

__all__ = [
    "FP_REG_BASE",
    "FreeList",
    "NUM_ARCH_REGS",
    "RegisterAliasTable",
    "RegisterRenamer",
]
