"""The register renamer.

One architectural namespace of 64 registers: 0-31 are integer, 32-63 are
floating point. Each class renames into its own 256-entry physical file
(Table 1). Initial architectural state is pre-mapped so that traces can
read any register without an explicit producer.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.config import CoreConfig
from repro.isa.uop import MicroOp
from repro.rename.freelist import FreeList
from repro.rename.rat import RegisterAliasTable

NUM_ARCH_REGS = 64
FP_REG_BASE = 32     # arch regs >= this rename into the FP file


class RegisterRenamer:
    """RAT + free lists + rollback/commit protocol."""

    def __init__(self, config: Optional[CoreConfig] = None) -> None:
        cfg = config or CoreConfig()
        self.config = cfg
        self.rat = RegisterAliasTable(NUM_ARCH_REGS)
        self.int_free = FreeList(0, cfg.int_prf, reserved=FP_REG_BASE)
        self.fp_free = FreeList(cfg.int_prf, cfg.fp_prf,
                                reserved=NUM_ARCH_REGS - FP_REG_BASE)
        # Pre-map architectural state onto the reserved registers.
        for arch in range(FP_REG_BASE):
            self.rat.set(arch, arch)
        for arch in range(FP_REG_BASE, NUM_ARCH_REGS):
            self.rat.set(arch, cfg.int_prf + (arch - FP_REG_BASE))
        self.renames = 0

    # ------------------------------------------------------------------

    def _pool_for(self, arch: int) -> FreeList:
        return self.fp_free if arch >= FP_REG_BASE else self.int_free

    def can_rename(self, uop: MicroOp) -> bool:
        """True when a destination register (if any) can be allocated."""
        if uop.dst is None:
            return True
        return not self._pool_for(uop.dst).empty

    def rename(self, uop: MicroOp) -> None:
        """Rename sources then allocate the destination.

        Caller must have checked :meth:`can_rename`.
        """
        uop.psrcs = [self.rat.lookup(src) for src in uop.srcs]
        if uop.dst is not None:
            pdst = self._pool_for(uop.dst).allocate()
            uop.prev_pdst = self.rat.set(uop.dst, pdst)
            uop.pdst = pdst
        else:
            uop.pdst = -1
            uop.prev_pdst = -1
        self.renames += 1

    def commit(self, uop: MicroOp) -> None:
        """Retire: the previous mapping of the destination is now dead."""
        if uop.dst is not None and uop.prev_pdst >= 0:
            self._pool_for(uop.dst).release(uop.prev_pdst)

    def rollback(self, uops_youngest_first: List[MicroOp]) -> None:
        """Squash: undo renames in reverse program order."""
        for uop in uops_youngest_first:
            if uop.dst is not None and uop.pdst >= 0:
                self.rat.restore(uop.dst, uop.prev_pdst)
                self._pool_for(uop.dst).release(uop.pdst)
                uop.pdst = -1

    # ------------------------------------------------------------------

    def free_counts(self) -> tuple:
        return (len(self.int_free), len(self.fp_free))

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        return {
            "rat": self.rat.state_dict(),
            "int_free": self.int_free.state_dict(),
            "fp_free": self.fp_free.state_dict(),
            "renames": self.renames,
        }

    def load_state_dict(self, state: dict) -> None:
        self.rat.load_state_dict(state["rat"])
        self.int_free.load_state_dict(state["int_free"])
        self.fp_free.load_state_dict(state["fp_free"])
        self.renames = state["renames"]
