"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run WORKLOAD CONFIG`` — simulate one (workload, configuration) pair
  and print the statistics;
* ``table1`` — render the machine configuration (paper Table 1);
* ``table2`` — run Baseline_0 over the selected workloads (paper Table 2);
* ``figure {3,4,5,7,8}`` — regenerate one evaluation figure;
* ``sweep FILE`` — execute a declarative sweep file (TOML/JSON, see
  ``examples/sweeps/``) through the parallel experiment engine;
* ``list`` — available workloads and configuration presets.

Workload selection and simulation volume follow the ``REPRO_*``
environment variables (see :mod:`repro.experiments.runner`); the
``--jobs`` / ``--cache-dir`` flags on ``figure``, ``table2`` and
``sweep`` override ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` for one
invocation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.presets import PRESET_NAMES
from repro.experiments import figures
from repro.experiments.engine import EngineOptions, Sweep
from repro.experiments.report import (
    breakdown_table,
    performance_table,
    summary_line,
)
from repro.experiments.runner import Settings, run_sweep
from repro.experiments.tables import render_table1, render_table2
from repro.pipeline.sim import run_workload
from repro.workloads.suite import SUITE

_FIGURES = {
    "3": ("fig3", []),
    "4": ("fig4", [("SpecSched_4 (banked)", None)]),
    "5": ("fig5", [("SpecSched_4_Shift", "SpecSched_4")]),
    "7": ("fig7", [("SpecSched_4_Ctr", "SpecSched_4"),
                   ("SpecSched_4_Filter", "SpecSched_4")]),
    "8": ("fig8", [("SpecSched_4_Combined", "SpecSched_4"),
                   ("SpecSched_4_Crit", "SpecSched_4")]),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cost-effective speculative scheduling (ISCA 2015) "
                    "reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one workload/config pair")
    run_p.add_argument("workload", choices=sorted(SUITE))
    run_p.add_argument("config", help="e.g. SpecSched_4_Crit")
    run_p.add_argument("--dual-ported", action="store_true",
                       help="ideal dual-ported L1D instead of banked")
    run_p.add_argument("--measure", type=int, default=20_000,
                       help="measured µops (default 20000)")

    sub.add_parser("table1", help="render the machine configuration")
    table2_p = sub.add_parser("table2", help="Baseline_0 IPC per workload")
    _add_engine_flags(table2_p)

    fig_p = sub.add_parser("figure", help="regenerate an evaluation figure")
    fig_p.add_argument("number", choices=sorted(_FIGURES))
    _add_engine_flags(fig_p)

    sweep_p = sub.add_parser(
        "sweep", help="execute a declarative sweep file (TOML or JSON)")
    sweep_p.add_argument("file", help="sweep description, e.g. "
                                      "examples/sweeps/shifting.toml")
    _add_engine_flags(sweep_p)

    sub.add_parser("list", help="available workloads and presets")
    return parser


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (overrides REPRO_JOBS)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent result cache directory; 'off' "
                             "disables (overrides REPRO_CACHE_DIR)")


def _engine_options(args: argparse.Namespace) -> EngineOptions:
    """Environment defaults with the command-line flags layered on top.

    Built per invocation (never written back to ``os.environ``) so
    embedding ``main()`` in a test or notebook leaks no state."""
    options = EngineOptions.from_env()
    if getattr(args, "jobs", None) is not None:
        options = EngineOptions(jobs=max(1, args.jobs),
                                cache_dir=options.cache_dir)
    if getattr(args, "cache_dir", None) is not None:
        options = EngineOptions(jobs=options.jobs,
                                cache_dir=args.cache_dir)
    return options


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_workload(args.workload, args.config,
                          banked=not args.dual_ported,
                          measure_uops=args.measure)
    stats = result.stats
    print(f"{result.workload} under {result.config_name}:")
    for key in ("cycles", "committed_uops", "issued_total", "unique_issued",
                "replayed_miss", "replayed_bank", "l1d_accesses",
                "l1d_misses", "l1d_bank_conflicts", "branches",
                "branch_mispredicts", "issue_cycles_lost"):
        print(f"  {key:22s} {getattr(stats, key)}")
    print(f"  {'IPC':22s} {stats.ipc:.3f}")
    print(f"  {'L1D miss rate':22s} {stats.l1d_miss_rate:.1%}")
    return 0


def _cmd_figure(number: str, options: EngineOptions) -> int:
    sweep_name, summaries = _FIGURES[number]
    sweep = figures.FIGURE_SWEEPS[sweep_name]()
    result = run_sweep(sweep, Settings.from_env(), options=options)
    print(performance_table(result))
    for label, reference in summaries:
        print()
        print(breakdown_table(result, label))
        if reference:
            print(summary_line(result, label, reference))
    return 0


def _cmd_sweep(path: str, options: EngineOptions) -> int:
    sweep = Sweep.from_file(path)
    result = run_sweep(sweep, options=options)
    print(performance_table(result))
    for series in sweep.series:
        if series.label == sweep.baseline:
            continue
        print()
        print(summary_line(result, series.label, sweep.baseline))
    return 0


def _cmd_list() -> int:
    print("workloads:")
    for name, spec in SUITE.items():
        kind = "FP " if spec.is_fp else "INT"
        print(f"  {name:12s} [{kind}] {spec.description}")
    print("\nconfiguration presets (grammar: see repro.core.presets):")
    for name in PRESET_NAMES:
        print(f"  {name}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "table1":
        print(render_table1())
        return 0
    if args.command == "table2":
        print(render_table2(Settings.from_env(),
                            options=_engine_options(args)))
        return 0
    if args.command == "figure":
        return _cmd_figure(args.number, _engine_options(args))
    if args.command == "sweep":
        return _cmd_sweep(args.file, _engine_options(args))
    if args.command == "list":
        return _cmd_list()
    return 1


if __name__ == "__main__":      # pragma: no cover
    sys.exit(main())
