"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run WORKLOAD CONFIG`` — simulate one (workload, configuration) pair
  and print the statistics; ``--sample`` switches to SMARTS-style
  interval sampling (mean IPC ± 95% CI), ``--from-checkpoint`` resumes
  from saved warm state;
* ``table1`` — render the machine configuration (paper Table 1);
* ``table2`` — run Baseline_0 over the selected workloads (paper Table 2);
* ``figure {3,4,5,7,8}`` — regenerate one evaluation figure;
* ``sweep FILE`` — execute a declarative sweep file (TOML/JSON, see
  ``examples/sweeps/``) through the parallel experiment engine; a
  ``[sampling]`` table in the file runs every cell sampled;
* ``trace record WORKLOAD`` / ``trace info FILE`` / ``trace replay FILE
  CONFIG`` — capture a µop stream to the binary trace format, inspect a
  recording, replay one through the simulator;
* ``checkpoint create WORKLOAD CONFIG`` / ``checkpoint info FILE`` /
  ``checkpoint rebase FILE CONFIG`` — freeze a mid-run simulator's
  complete state to a versioned ``.ckpt`` file, inspect one
  (``--verify`` re-checks the content digest), or re-target a purely
  functional checkpoint to another scheduling-policy configuration
  (one warming pass, many configs — see
  :mod:`repro.checkpoint.rebase`);
* ``worker`` — drain a queue-backend spool directory: the worker half
  of ``REPRO_BACKEND=queue``, runnable on another host that shares the
  spool (see :mod:`repro.experiments.backends`);
* ``bench [NAME ...]`` — measure simulator throughput (headline /
  table2 / trace / sampling / telemetry / warming), write
  ``BENCH_<name>.json`` trajectory files and, with ``--baseline``,
  enforce the perf regression gate;
* ``events record WORKLOAD CONFIG`` / ``events info FILE`` / ``events
  dump FILE`` / ``events export FILE`` — record a per-µop pipeline
  event trace (JSONL, optionally gzip'd), inspect it, print raw events,
  or export it to the gem5/Konata O3PipeView format (see
  ``docs/OBSERVABILITY.md``);
* ``report manifests`` — roll up the engine's per-cell run manifests
  (wall time, cache hit rate, peak RSS) from the cache directory;
* ``rv32i run PROGRAM`` / ``rv32i capture PROGRAM`` / ``rv32i check`` —
  execute a real RV32I program image functionally to halt (end-state
  registers + memory digest), capture its lowered µop stream to the
  binary trace format, or re-assemble the bundled kernel corpus and
  verify the checked-in images (see ``docs/RV32I.md``);
* ``list`` — available workloads (suite, scenarios, traces, rv32i
  programs) and presets.

Workload arguments resolve through the workload registry
(:mod:`repro.traces.registry`): suite names, scenario-spec names/files
and recorded-trace names/files are all accepted. Workload selection and
simulation volume follow the ``REPRO_*`` environment variables (see
:mod:`repro.experiments.runner`); the ``--jobs`` / ``--cache-dir`` flags
on ``figure``, ``table2`` and ``sweep`` override ``REPRO_JOBS`` /
``REPRO_CACHE_DIR`` for one invocation. ``REPRO_BACKEND=queue`` (with
``REPRO_SPOOL_DIR``) swaps the local process pool for the spool work
queue on every engine-driven command.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.presets import PRESET_NAMES
from repro.experiments import figures
from repro.experiments.engine import EngineOptions, Sweep
from repro.experiments.report import (
    breakdown_table,
    performance_table,
    sampling_table,
    summary_line,
)
from repro.experiments.runner import Settings, run_sweep
from repro.experiments.tables import render_table1, render_table2
from repro.pipeline.sim import run_workload
from repro.traces import capture, default_registry, read_info, verify
from repro.traces.registry import TraceWorkload

_FIGURES = {
    "3": ("fig3", []),
    "4": ("fig4", [("SpecSched_4 (banked)", None)]),
    "5": ("fig5", [("SpecSched_4_Shift", "SpecSched_4")]),
    "7": ("fig7", [("SpecSched_4_Ctr", "SpecSched_4"),
                   ("SpecSched_4_Filter", "SpecSched_4")]),
    "8": ("fig8", [("SpecSched_4_Combined", "SpecSched_4"),
                   ("SpecSched_4_Crit", "SpecSched_4")]),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cost-effective speculative scheduling (ISCA 2015) "
                    "reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one workload/config pair")
    run_p.add_argument("workload",
                       help="registry name or file: suite workload, "
                            "scenario spec (.toml/.json) or trace (.trc)")
    run_p.add_argument("config", help="e.g. SpecSched_4_Crit")
    run_p.add_argument("--dual-ported", action="store_true",
                       help="ideal dual-ported L1D instead of banked")
    run_p.add_argument("--measure", type=int, default=20_000,
                       help="measured µops (default 20000)")
    run_p.add_argument("--from-checkpoint", default=None, metavar="FILE",
                       help="resume from a saved .ckpt instead of "
                            "starting cold (see 'repro checkpoint')")
    run_p.add_argument("--sample", action="store_true",
                       help="SMARTS-style interval sampling instead of "
                            "one contiguous measured region")
    run_p.add_argument("--intervals", type=int, default=None, metavar="K",
                       help="sampling: number of measurement intervals")
    run_p.add_argument("--interval-uops", type=int, default=None,
                       metavar="N", help="sampling: measured µops per "
                                         "interval")
    run_p.add_argument("--sample-warmup", type=int, default=None,
                       metavar="N", help="sampling: detailed warmup µops "
                                         "before each interval")
    run_p.add_argument("--period", type=int, default=None, metavar="N",
                       help="sampling: interval-start-to-start distance "
                            "in µops")
    run_p.add_argument("--offset", type=int, default=None, metavar="N",
                       help="sampling: functional warming µops before "
                            "the first interval")
    run_p.add_argument("--sample-mode",
                       choices=("chained", "cells", "cells-chained"),
                       default="chained",
                       help="chained: one pass, fastest (default); "
                            "cells: per-interval engine cells, pooled "
                            "(--jobs) and persistently cached; "
                            "cells-chained: cells whose warming chains "
                            "through per-interval checkpoints (linear "
                            "warming cost, same results as cells)")
    run_p.add_argument("--warming", choices=("auto", "scalar", "vectorized"),
                       default=None,
                       help="functional-warming tier: vectorized numpy "
                            "kernels or the scalar reference loop "
                            "(bit-identical results; default auto = "
                            "vectorized when numpy is available)")
    run_p.add_argument("--metrics", action="store_true",
                       help="attach the telemetry probes (occupancy "
                            "histograms, replay/filter aggregates) and "
                            "print the metrics report after the run")
    _add_engine_flags(run_p)

    sub.add_parser("table1", help="render the machine configuration")
    table2_p = sub.add_parser("table2", help="Baseline_0 IPC per workload")
    _add_engine_flags(table2_p)

    fig_p = sub.add_parser("figure", help="regenerate an evaluation figure")
    fig_p.add_argument("number", choices=sorted(_FIGURES),
                       help="paper figure number to regenerate")
    _add_engine_flags(fig_p)

    sweep_p = sub.add_parser(
        "sweep", help="execute a declarative sweep file (TOML or JSON)")
    sweep_p.add_argument("file", help="sweep description, e.g. "
                                      "examples/sweeps/shifting.toml")
    sweep_p.add_argument("--progress", action="store_true",
                         help="print one line per simulated cell as "
                              "results land (completion order)")
    _add_engine_flags(sweep_p)

    trace_p = sub.add_parser(
        "trace", help="record, inspect and replay binary µop traces")
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    record_p = trace_sub.add_parser(
        "record", help="capture a workload's µop stream to disk")
    record_p.add_argument("workload",
                          help="registry name (suite workload or scenario)")
    record_p.add_argument("-o", "--output", default=None, metavar="FILE",
                          help="output path (default <workload>.trc)")
    record_p.add_argument("--uops", type=int, default=None, metavar="N",
                          help="µops to capture (default: enough for the "
                               "current REPRO_* volumes)")
    record_p.add_argument("--seed", type=int, default=None,
                          help="generator seed (default: the spec's seed)")
    record_p.add_argument("--no-compress", action="store_true",
                          help="store records raw instead of zlib frames")

    info_p = trace_sub.add_parser("info", help="describe a trace file")
    info_p.add_argument("file", help="a .trc recording")
    info_p.add_argument("--verify", action="store_true",
                        help="re-scan the payload against the digest")

    replay_p = trace_sub.add_parser(
        "replay", help="simulate a recorded trace under one configuration")
    replay_p.add_argument("file", help="a .trc recording")
    replay_p.add_argument("config", help="e.g. SpecSched_4_Crit")
    replay_p.add_argument("--dual-ported", action="store_true",
                          help="ideal dual-ported L1D instead of banked")
    replay_p.add_argument("--measure", type=int, default=None,
                          help="measured µops (default: REPRO_MEASURE)")

    ckpt_p = sub.add_parser(
        "checkpoint", help="create and inspect simulator checkpoints")
    ckpt_sub = ckpt_p.add_subparsers(dest="checkpoint_command",
                                     required=True)

    ckpt_create = ckpt_sub.add_parser(
        "create", help="run a workload to a point and freeze the "
                       "complete machine state to a .ckpt file")
    ckpt_create.add_argument("workload", help="registry name or file")
    ckpt_create.add_argument("config", help="e.g. SpecSched_4_Crit")
    ckpt_create.add_argument("-o", "--output", default=None, metavar="FILE",
                             help="output path (default "
                                  "<workload>-<config>.ckpt)")
    ckpt_create.add_argument("--uops", type=int, default=60_000, metavar="N",
                             help="µops to advance before saving "
                                  "(default 60000)")
    ckpt_create.add_argument("--mode", choices=("functional", "detailed"),
                             default="functional",
                             help="functional: fast-forward (caches + "
                                  "branch predictors warmed, default); "
                                  "detailed: full pipeline simulation")
    ckpt_create.add_argument("--functional-warmup", type=int, default=None,
                             metavar="N",
                             help="functional warmup before a detailed-"
                                  "mode run (default: REPRO_FUNC_WARMUP)")
    ckpt_create.add_argument("--seed", type=int, default=None,
                             help="trace seed (default: the workload's)")
    ckpt_create.add_argument("--dual-ported", action="store_true",
                             help="ideal dual-ported L1D instead of banked")
    ckpt_create.add_argument("--no-compress", action="store_true",
                             help="store the payload raw instead of zlib")

    ckpt_info = ckpt_sub.add_parser("info", help="describe a checkpoint")
    ckpt_info.add_argument("file", help="a .ckpt file")
    ckpt_info.add_argument("--verify", action="store_true",
                           help="decode the payload against the digest")

    ckpt_rebase = ckpt_sub.add_parser(
        "rebase", help="re-target a purely functional checkpoint to a "
                       "configuration differing only in scheduling-"
                       "policy parameters")
    ckpt_rebase.add_argument("file", help="source .ckpt (functional mode)")
    ckpt_rebase.add_argument("config", help="target preset, e.g. Baseline_0")
    ckpt_rebase.add_argument("-o", "--output", default=None, metavar="FILE",
                             help="output path (default "
                                  "<source>-<config>.ckpt)")
    ckpt_rebase.add_argument("--dual-ported", action="store_true",
                             help="ideal dual-ported L1D instead of banked "
                                  "(must match the source — rebase never "
                                  "crosses memory configs)")
    ckpt_rebase.add_argument("--no-compress", action="store_true",
                             help="store the payload raw instead of zlib")

    bench_p = sub.add_parser(
        "bench", help="measure simulator throughput and write "
                      "BENCH_<name>.json trajectory files")
    bench_p.add_argument("names", nargs="*", metavar="NAME",
                         help="benchmarks to run: headline, table2, "
                              "trace, sampling, telemetry, warming "
                              "(default: all)")
    bench_p.add_argument("--quick", action="store_true",
                         help="CI volumes: 4 workloads, reduced µop counts")
    bench_p.add_argument("--out-dir", default=".", metavar="DIR",
                         help="where BENCH_<name>.json files are written "
                              "(default: current directory)")
    bench_p.add_argument("--profile", action="store_true",
                         help="attach per-stage cycle-loop timers and "
                              "include the breakdown in the result")
    bench_p.add_argument("--baseline", default=None, metavar="FILE",
                         help="perf gate: fail when a benchmark regresses "
                              "vs this committed baseline")
    bench_p.add_argument("--max-regression", type=float, default=0.2,
                         metavar="FRAC",
                         help="largest tolerated normalized-throughput drop "
                              "(default 0.2 = 20%%)")
    bench_p.add_argument("--write-baseline", default=None, metavar="FILE",
                         help="also write the combined results as a "
                              "baseline file (e.g. benchmarks/baseline.json)")

    events_p = sub.add_parser(
        "events", help="record, inspect and export per-µop pipeline "
                       "event traces")
    events_sub = events_p.add_subparsers(dest="events_command",
                                         required=True)

    ev_record = events_sub.add_parser(
        "record", help="simulate with event recording on and write a "
                       "JSONL event trace")
    ev_record.add_argument("workload", help="registry name or file")
    ev_record.add_argument("config", help="e.g. SpecSched_4_Crit")
    ev_record.add_argument("-o", "--output", default=None, metavar="FILE",
                           help="output path; a .gz suffix gzip-"
                                "compresses (default "
                                "<workload>-<config>.events.jsonl.gz)")
    ev_record.add_argument("--uops", type=int, default=20_000, metavar="N",
                           help="µops to simulate with recording on "
                                "(default 20000)")
    ev_record.add_argument("--seed", type=int, default=None,
                           help="trace seed (default: the workload's)")
    ev_record.add_argument("--dual-ported", action="store_true",
                           help="ideal dual-ported L1D instead of banked")
    ev_record.add_argument("--o3pipeview", nargs="?", const="",
                           default=None, metavar="FILE",
                           help="also export the trace to an O3PipeView "
                                "text file (Konata / gem5 viewers); "
                                "FILE defaults to "
                                "<output>.o3pipeview.txt")

    ev_info = events_sub.add_parser("info", help="describe an event trace")
    ev_info.add_argument("file", help="a .events.jsonl[.gz] trace")

    ev_dump = events_sub.add_parser(
        "dump", help="print events as one line of text each")
    ev_dump.add_argument("file", help="a .events.jsonl[.gz] trace")
    ev_dump.add_argument("--limit", type=int, default=None, metavar="N",
                         help="stop after N events (default: all)")
    ev_dump.add_argument("--kind", default=None, metavar="KIND",
                         help="only events of this kind (e.g. replay)")

    ev_export = events_sub.add_parser(
        "export", help="convert an event trace to the O3PipeView format")
    ev_export.add_argument("file", help="a .events.jsonl[.gz] trace")
    ev_export.add_argument("-o", "--output", default=None, metavar="FILE",
                           help="output path (default: trace name with "
                                ".o3pipeview.txt)")

    report_p = sub.add_parser(
        "report", help="roll up engine run telemetry")
    report_sub = report_p.add_subparsers(dest="report_command",
                                         required=True)
    report_manifests = report_sub.add_parser(
        "manifests", help="summarize the per-cell run manifests next to "
                          "the result cache")
    report_manifests.add_argument("--json", action="store_true",
                                  help="print the rollup as JSON")
    _add_engine_flags(report_manifests)

    worker_p = sub.add_parser(
        "worker", help="drain a queue-backend spool: execute tasks "
                       "enqueued by REPRO_BACKEND=queue submitters")
    worker_p.add_argument("--spool", default=None, metavar="DIR",
                          help="spool directory (default: REPRO_SPOOL_DIR, "
                               "else <cache_dir>/spool)")
    worker_p.add_argument("--max-tasks", type=int, default=None, metavar="N",
                          help="exit after N cells (default: run until "
                               "the queue is idle)")
    worker_p.add_argument("--idle-timeout", type=float, default=0.0,
                          metavar="S",
                          help="keep polling S seconds after the queue "
                               "runs dry (default 0 = exit as soon as it "
                               "is empty)")
    worker_p.add_argument("--requeue-stale", action="store_true",
                          help="first re-queue claimed tasks left behind "
                               "by a crashed worker (only safe when no "
                               "other worker is active)")
    _add_engine_flags(worker_p)

    rv32i_p = sub.add_parser(
        "rv32i", help="run, capture and check real RV32I program images")
    rv32i_sub = rv32i_p.add_subparsers(dest="rv32i_command", required=True)

    rv_run = rv32i_sub.add_parser(
        "run", help="execute a program functionally to halt and print "
                    "its architectural end state")
    rv_run.add_argument("program",
                        help="bundled kernel name (see 'repro list') or "
                             "an image path (.hex/.bin)")
    rv_run.add_argument("--max-steps", type=int, default=1_000_000,
                        metavar="N",
                        help="step cap for runaway programs "
                             "(default 1000000)")
    rv_run.add_argument("--regs", action="store_true",
                        help="print the full register file, not just the "
                             "non-zero entries")

    rv_capture = rv32i_sub.add_parser(
        "capture", help="execute a program and record its lowered µop "
                        "stream to a binary .trc trace")
    rv_capture.add_argument("program",
                            help="bundled kernel name or image path")
    rv_capture.add_argument("-o", "--output", default=None, metavar="FILE",
                            help="output path (default <program>.trc)")
    rv_capture.add_argument("--uops", type=int, default=None, metavar="N",
                            help="µops to capture, looping the program as "
                                 "needed (default: enough for the current "
                                 "REPRO_* volumes)")
    rv_capture.add_argument("--seed", type=int, default=None,
                            help="wrong-path synthesizer seed (default: "
                                 "the workload's; never affects the "
                                 "committed path)")
    rv_capture.add_argument("--no-compress", action="store_true",
                            help="store records raw instead of zlib frames")

    rv32i_sub.add_parser(
        "check", help="re-assemble every bundled kernel listing and "
                      "verify the checked-in .hex images match "
                      "byte-for-byte")

    sub.add_parser("list", help="available workloads and presets")
    return parser


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (overrides REPRO_JOBS)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent result cache directory; 'off' "
                             "disables (overrides REPRO_CACHE_DIR)")


def _engine_options(args: argparse.Namespace) -> EngineOptions:
    """Environment defaults with the command-line flags layered on top.

    Built per invocation (never written back to ``os.environ``) so
    embedding ``main()`` in a test or notebook leaks no state."""
    import dataclasses

    options = EngineOptions.from_env()
    if getattr(args, "jobs", None) is not None:
        options = dataclasses.replace(options, jobs=max(1, args.jobs))
    if getattr(args, "cache_dir", None) is not None:
        options = dataclasses.replace(options, cache_dir=args.cache_dir)
    return options


def _print_run(result) -> None:
    stats = result.stats
    print(f"{result.workload} under {result.config_name}:")
    for key in ("cycles", "committed_uops", "issued_total", "unique_issued",
                "replayed_miss", "replayed_bank", "l1d_accesses",
                "l1d_misses", "l1d_bank_conflicts", "branches",
                "branch_mispredicts", "issue_cycles_lost"):
        print(f"  {key:22s} {getattr(stats, key)}")
    print(f"  {'IPC':22s} {stats.ipc:.3f}")
    print(f"  {'L1D miss rate':22s} {stats.l1d_miss_rate:.1%}")


def _fail(exc: BaseException) -> int:
    """Uniform clean-error exit for expected bad inputs (unknown names,
    malformed scenario/trace files, undersized traces)."""
    if isinstance(exc, OSError):
        # args[0] is the bare errno for OSErrors; str() keeps the path.
        message = str(exc)
    else:
        message = exc.args[0] if exc.args else exc
    print(f"error: {message}", file=sys.stderr)
    return 2


def _sampling_spec(args: argparse.Namespace):
    """Spec from the ``run --sample`` flags (defaults from the spec)."""
    from repro.checkpoint.sampling import SamplingSpec

    overrides = {}
    for field_name, arg_name in (("intervals", "intervals"),
                                 ("interval_uops", "interval_uops"),
                                 ("warmup_uops", "sample_warmup"),
                                 ("period_uops", "period"),
                                 ("offset_uops", "offset")):
        value = getattr(args, arg_name, None)
        if value is not None:
            overrides[field_name] = value
    return SamplingSpec(**overrides).validate()


def _print_sampled(result) -> None:
    spec = result.spec
    print(f"{result.workload} under {result.config_name} (sampled: "
          f"{len(result.interval_stats)} x {spec.interval_uops} µops, "
          f"period {spec.period_uops}, offset {spec.offset_uops}):")
    ipcs = " ".join(f"{ipc:.3f}" for ipc in result.ipc_values)
    print(f"  interval IPCs          {ipcs}")
    print(f"  {'IPC':22s} {result.mean_ipc:.3f} ±{result.ipc_ci95:.3f} "
          f"(95% CI)")
    breakdown = result.breakdown()
    print(f"  {'issued breakdown':22s} unique {breakdown['unique']:.3f}, "
          f"rpld_miss {breakdown['rpld_miss']:.3f}, "
          f"rpld_bank {breakdown['rpld_bank']:.3f}")
    total = result.total
    print(f"  {'detailed µops':22s} {total.committed_uops} "
          f"(of a {spec.span_uops}-µop span)")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.metrics and args.sample:
        return _fail(ValueError(
            "--metrics instruments one detailed run; combine it with a "
            "plain (non --sample) invocation"))
    if not args.sample:
        given = [flag for flag, arg_name in
                 (("--intervals", "intervals"),
                  ("--interval-uops", "interval_uops"),
                  ("--sample-warmup", "sample_warmup"),
                  ("--period", "period"),
                  ("--offset", "offset"))
                 if getattr(args, arg_name, None) is not None]
        if given:
            return _fail(ValueError(
                f"{', '.join(given)} only take effect with --sample"))
    if args.warming is not None:
        from repro.pipeline.warming import set_default_mode

        # Process-wide default for this invocation; the environment
        # variable is the cross-process channel (engine pool workers).
        set_default_mode(args.warming)
        os.environ["REPRO_WARMING"] = args.warming
    if args.sample:
        from repro.checkpoint.sampling import (
            run_sampled,
            run_sampled_cells_chained,
            run_sampled_chained,
        )

        try:
            spec = _sampling_spec(args)
            if args.sample_mode == "cells":
                result = run_sampled(
                    args.workload, args.config, spec,
                    banked=not args.dual_ported,
                    options=_engine_options(args),
                    checkpoint=args.from_checkpoint,
                    warming=args.warming)
            elif args.sample_mode == "cells-chained":
                if args.from_checkpoint is not None:
                    raise ValueError(
                        "--from-checkpoint requires --sample-mode cells "
                        "(chained cells own their warming chain)")
                result = run_sampled_cells_chained(
                    args.workload, args.config, spec,
                    banked=not args.dual_ported,
                    options=_engine_options(args),
                    warming=args.warming)
            else:
                if args.from_checkpoint is not None:
                    raise ValueError(
                        "--from-checkpoint requires --sample-mode cells "
                        "(the chained pass owns its own warming)")
                result = run_sampled_chained(args.workload, args.config,
                                             spec,
                                             banked=not args.dual_ported,
                                             warming=args.warming)
        except (KeyError, OSError, ValueError) as exc:
            return _fail(exc)
        _print_sampled(result)
        return 0
    collector = None
    if args.metrics:
        from repro.telemetry import MetricsCollector

        collector = MetricsCollector()
    try:
        result = run_workload(args.workload, args.config,
                              banked=not args.dual_ported,
                              measure_uops=args.measure,
                              checkpoint=args.from_checkpoint,
                              collector=collector)
    except (KeyError, OSError, ValueError) as exc:
        return _fail(exc)
    _print_run(result)
    if collector is not None:
        from repro.telemetry import render_metrics

        print()
        print(render_metrics(result.stats.telemetry))
    return 0


def _cmd_checkpoint_create(args: argparse.Namespace) -> int:
    from repro.checkpoint.format import save_checkpoint
    from repro.pipeline.cpu import Simulator

    try:
        workload = default_registry().resolve(args.workload)
        from repro.core.presets import make_config

        config = make_config(args.config, banked=not args.dual_ported)
        seed = args.seed
        if seed is None:
            seed = int(getattr(workload, "seed", 0) or 0)
        sim = Simulator(config, workload.build_trace(seed))
        if args.mode == "functional":
            consumed = sim.fast_forward(args.uops)
            provenance = {"mode": "functional", "stream_uops": consumed}
        else:
            functional = (args.functional_warmup
                          if args.functional_warmup is not None
                          else Settings.from_env().functional_warmup_uops)
            if functional:
                sim.functional_warmup(workload.build_trace(seed), functional)
            sim.run(max_uops=args.uops)
            provenance = {"mode": "detailed",
                          "functional_warmup_uops": functional,
                          "stream_uops": sim.stats.committed_uops}
        output = args.output or f"{workload.name}-{args.config}.ckpt"
        info = save_checkpoint(sim, output, workload=workload, seed=seed,
                               compress=not args.no_compress,
                               provenance=provenance)
    except (KeyError, OSError, ValueError) as exc:
        return _fail(exc)
    print(f"checkpointed {workload.name!r} under {args.config} at "
          f"{provenance['stream_uops']} stream µops -> {output}")
    print(f"  digest     {info.digest}")
    print(f"  size       {info.file_bytes} bytes "
          f"(raw state {info.raw_bytes})")
    print(f"  committed  {info.uops_committed} µops, {info.cycles} cycles")
    return 0


def _cmd_checkpoint_rebase(args: argparse.Namespace) -> int:
    from repro.checkpoint.rebase import rebase_checkpoint
    from repro.core.presets import make_config

    try:
        config = make_config(args.config, banked=not args.dual_ported)
        output = (args.output
                  or f"{Path(args.file).stem}-{args.config}.ckpt")
        info = rebase_checkpoint(args.file, config, output,
                                 compress=not args.no_compress)
    except (KeyError, OSError, ValueError) as exc:
        return _fail(exc)
    provenance = info.provenance
    print(f"rebased {args.file} -> {output} under {args.config} at "
          f"{provenance.get('stream_uops', '?')} stream µops")
    print(f"  digest     {info.digest}")
    print(f"  size       {info.file_bytes} bytes "
          f"(raw state {info.raw_bytes})")
    print(f"  source     {provenance.get('source_config', '?')} "
          f"({str(provenance.get('source_digest', ''))[:12]})")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.experiments.backends import drain_spool, requeue_stale

    try:
        if args.spool is not None:
            spool = Path(args.spool)
        else:
            spool = _engine_options(args).spool_path()
        if args.requeue_stale:
            moved = requeue_stale(spool)
            if moved:
                print(f"re-queued {moved} stale task(s)", file=sys.stderr)
        executed = drain_spool(
            spool, max_tasks=args.max_tasks,
            idle_timeout=args.idle_timeout,
            log=lambda line: print(line, file=sys.stderr))
    except (OSError, ValueError) as exc:
        return _fail(exc)
    print(f"worker drained {executed} cell(s) from {spool}")
    return 0


def _cmd_checkpoint_info(args: argparse.Namespace) -> int:
    from repro.checkpoint.format import load_checkpoint, read_info

    try:
        info = read_info(args.file)
    except (OSError, ValueError) as exc:
        return _fail(exc)
    print(f"{args.file}:")
    print(f"  format     v{info.version} "
          f"({'zlib payload' if info.compressed else 'raw payload'})")
    print(f"  workload   {info.workload_name}")
    print(f"  config     {info.config_name}")
    print(f"  seed       {info.seed}")
    print(f"  committed  {info.uops_committed} µops, {info.cycles} cycles")
    print(f"  digest     {info.digest}")
    print(f"  size       {info.file_bytes} bytes "
          f"(raw state {info.raw_bytes})")
    for key in sorted(info.provenance):
        print(f"  {key:10s} {info.provenance[key]}")
    if args.verify:
        try:
            load_checkpoint(args.file)
        except (OSError, ValueError) as exc:
            print(f"  payload    DIGEST MISMATCH ({exc})")
            return 1
        print("  payload    digest OK")
    return 0


def default_capture_uops(settings: Optional[Settings] = None) -> int:
    """Enough µops that replay never starves at the current volumes.

    The recording must cover the functional-warmup stream *and* the timed
    stream (warmup + measure, plus the bounded fetch-ahead of µops still
    in flight when the measured budget is reached).
    """
    settings = settings or Settings.from_env()
    in_flight_margin = 8_192
    return max(settings.functional_warmup_uops,
               settings.warmup_uops + settings.measure_uops
               + in_flight_margin)


def _cmd_trace_record(args: argparse.Namespace) -> int:
    try:
        workload = default_registry().resolve(args.workload)
    except (KeyError, OSError, ValueError) as exc:
        return _fail(exc)
    if isinstance(workload, TraceWorkload):
        print("refusing to re-record an existing trace; record from a "
              "suite workload or scenario spec", file=sys.stderr)
        return 1
    seed = args.seed if args.seed is not None else workload.seed
    uops = args.uops if args.uops is not None else default_capture_uops()
    output = args.output or f"{workload.name}.trc"
    provenance = {
        "workload": workload.name,
        "description": workload.description,
        "is_fp": workload.is_fp,
        "seed": seed,
        "source_hash": workload.content_hash(),
    }
    info = capture(workload.build_trace(seed), output, uops, wp_seed=seed,
                   provenance=provenance, compress=not args.no_compress)
    ratio = info.raw_bytes / info.file_bytes if info.file_bytes else 0.0
    print(f"recorded {info.uop_count} µops of {workload.name!r} -> {output}")
    print(f"  digest     {info.digest}")
    print(f"  size       {info.file_bytes} bytes "
          f"({ratio:.1f}x vs raw records)" if info.compressed
          else f"  size       {info.file_bytes} bytes (uncompressed)")
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    try:
        info = read_info(args.file)
    except (OSError, ValueError) as exc:
        return _fail(exc)
    print(f"{args.file}:")
    print(f"  format     v{info.version} "
          f"({'zlib frames' if info.compressed else 'raw records'})")
    print(f"  µops       {info.uop_count}")
    print(f"  digest     {info.digest}")
    print(f"  wp_seed    {info.wp_seed}")
    print(f"  size       {info.file_bytes} bytes "
          f"(raw records {info.raw_bytes})")
    for key in sorted(info.provenance):
        print(f"  {key:10s} {info.provenance[key]}")
    if args.verify:
        ok = verify(args.file)
        print(f"  payload    {'digest OK' if ok else 'DIGEST MISMATCH'}")
        return 0 if ok else 1
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    # Volumes mirror `trace record`'s sizing: both derive from the
    # REPRO_* environment, so a recording made "for the current volumes"
    # replays under those same volumes (--measure still overrides).
    settings = Settings.from_env()
    try:
        workload = TraceWorkload(args.file)
        result = run_workload(
            workload, args.config, banked=not args.dual_ported,
            warmup_uops=settings.warmup_uops,
            measure_uops=args.measure or settings.measure_uops,
            functional_warmup_uops=settings.functional_warmup_uops)
    except (OSError, ValueError) as exc:
        return _fail(exc)
    _print_run(result)
    return 0


def _cmd_events_record(args: argparse.Namespace) -> int:
    from repro.core.presets import make_config
    from repro.pipeline.cpu import Simulator
    from repro.telemetry import EventBus, JsonlEventWriter

    try:
        workload = default_registry().resolve(args.workload)
        config = make_config(args.config, banked=not args.dual_ported)
    except (KeyError, OSError, ValueError) as exc:
        return _fail(exc)
    seed = args.seed
    if seed is None:
        seed = int(getattr(workload, "seed", 0) or 0)
    output = args.output or f"{workload.name}-{args.config}.events.jsonl.gz"
    provenance = {"workload": workload.name, "config": config.name,
                  "seed": seed, "uops": args.uops}
    try:
        with JsonlEventWriter(output, provenance=provenance) as writer:
            sim = Simulator(config, workload.build_trace(seed),
                            event_bus=EventBus(writer))
            stats = sim.run(max_uops=args.uops)
    except (OSError, ValueError) as exc:
        return _fail(exc)
    print(f"recorded {writer.count} events over {stats.cycles} cycles "
          f"({stats.committed_uops} committed µops) -> {output}")
    if args.o3pipeview is not None:
        from repro.telemetry import export_o3pipeview

        viewer_out = args.o3pipeview or _o3pipeview_default(output)
        _, count = export_o3pipeview(output, viewer_out)
        print(f"exported {count} µop records -> {viewer_out}")
    return 0


def _cmd_events_info(args: argparse.Namespace) -> int:
    from repro.telemetry import count_events
    from repro.telemetry.events import EventsFormatError

    try:
        header, counts = count_events(args.file)
    except (OSError, EventsFormatError) as exc:
        return _fail(exc)
    print(f"{args.file}:")
    print(f"  format     {header['format']} v{header['version']}")
    print(f"  fields     {', '.join(header['fields'])}")
    for key in sorted(header.get("provenance", {})):
        print(f"  {key:10s} {header['provenance'][key]}")
    total = sum(counts.values())
    print(f"  events     {total}")
    for kind in sorted(counts):
        print(f"    {kind:14s} {counts[kind]}")
    return 0


def _cmd_events_dump(args: argparse.Namespace) -> int:
    from repro.telemetry import open_events
    from repro.telemetry.events import EventsFormatError

    try:
        _, events = open_events(args.file)
        printed = 0
        for cycle, kind, seq, pc, a, b in events:
            if args.kind is not None and kind != args.kind:
                continue
            print(f"{cycle:>10} {kind:<12} seq={seq} pc=0x{pc:x} "
                  f"a={a} b={b}")
            printed += 1
            if args.limit is not None and printed >= args.limit:
                break
    except (OSError, EventsFormatError) as exc:
        return _fail(exc)
    return 0


def _o3pipeview_default(events_path) -> str:
    """``<trace-stem>.o3pipeview.txt`` next to the event trace."""
    name = Path(events_path).name
    for suffix in (".events.jsonl.gz", ".events.jsonl", ".jsonl.gz",
                   ".jsonl"):
        if name.endswith(suffix):
            name = name[:-len(suffix)]
            break
    return str(Path(events_path).with_name(f"{name}.o3pipeview.txt"))


def _cmd_events_export(args: argparse.Namespace) -> int:
    from repro.telemetry import export_o3pipeview
    from repro.telemetry.events import EventsFormatError

    output = args.output or _o3pipeview_default(args.file)
    try:
        _, count = export_o3pipeview(args.file, output)
    except (OSError, EventsFormatError) as exc:
        return _fail(exc)
    print(f"exported {count} µop records -> {output}")
    return 0


def _cmd_report_manifests(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.telemetry import manifests_dir, read_manifests, \
        render_rollup, rollup

    directory = manifests_dir(_engine_options(args).cache_path())
    if directory is None:
        return _fail(ValueError(
            "the persistent result cache is disabled (REPRO_CACHE_DIR=off) "
            "— no manifests to report"))
    manifests = read_manifests(directory)
    if not manifests:
        print(f"no manifests under {directory} (run a sweep first)")
        return 0
    summary = rollup(manifests)
    if args.json:
        print(json_module.dumps(summary, indent=1, sort_keys=True))
    else:
        print(f"manifests under {directory}:")
        print(render_rollup(summary))
    return 0


def _cmd_figure(number: str, options: EngineOptions) -> int:
    sweep_name, summaries = _FIGURES[number]
    sweep = figures.FIGURE_SWEEPS[sweep_name]()
    result = run_sweep(sweep, Settings.from_env(), options=options)
    print(performance_table(result))
    for label, reference in summaries:
        print()
        print(breakdown_table(result, label))
        if reference:
            print(summary_line(result, label, reference))
    return 0


def _cmd_sweep(path: str, options: EngineOptions,
               show_progress: bool = False) -> int:
    from repro.experiments.runner import shared_cache

    sweep = Sweep.from_file(path)
    cache = shared_cache(options)
    progress = None
    if show_progress:
        walls: List[float] = []

        def progress(done: int, total: int, manifest: dict) -> None:
            walls.append(float(manifest["wall_seconds"]))
            eta = ""
            remaining = total - done
            if remaining > 0 and walls:
                per_cell = sum(walls) / len(walls)
                eta_seconds = per_cell * remaining / max(1, options.jobs)
                eta = f"  eta {eta_seconds:5.1f}s"
            if "produce_position" in manifest:
                what = (f"ckpt {manifest['workload']} "
                        f"@{manifest['produce_position']}")
            else:
                what = f"{manifest['config']} x {manifest['workload']}"
            print(f"[{done}/{total}] {what}  "
                  f"{manifest['wall_seconds']:.2f}s{eta}", file=sys.stderr)
    result = run_sweep(sweep, options=options, cache=cache,
                       progress=progress)
    print(performance_table(result))
    if result.ipc_ci:
        print()
        print(sampling_table(result))
    for series in sweep.series:
        if series.label == sweep.baseline:
            continue
        print()
        print(summary_line(result, series.label, sweep.baseline))
    hits = cache.memory_hits + cache.disk_hits
    print(f"\ncells: {cache.stores} computed, {hits} cached "
          f"({cache.stores + hits} total)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        BENCHMARKS,
        bench_filename,
        run_benchmark,
        write_result,
    )
    from repro.perf.gate import (
        GATED_METRICS,
        check_regression,
        read_baseline,
        write_baseline,
    )

    names = args.names or list(BENCHMARKS)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        return _fail(KeyError(
            f"unknown benchmark(s) {', '.join(unknown)}; available: "
            f"{', '.join(BENCHMARKS)}"))
    baseline = None
    if args.baseline is not None:
        try:
            baseline = read_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            return _fail(exc)
    out_dir = Path(args.out_dir)
    try:
        out_dir.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        return _fail(exc)

    failures = []
    results = {}
    for name in names:
        result = run_benchmark(name, quick=args.quick, profile=args.profile)
        results[name] = result
        path = write_result(result, out_dir)
        metric = GATED_METRICS.get(name, "uops_per_sec")
        rate = result.metrics.get(metric, 0.0)
        rate_text = f"{rate:12,.2f}" if rate < 1000 else f"{rate:12,.0f}"
        print(f"{name:10s} {rate_text} {metric}   "
              f"(wall {result.metrics.get('wall_seconds', 0.0):.2f}s, "
              f"calibration {result.calibration_ops_per_sec:,.0f} ops/s) "
              f"-> {path}")
        if args.profile and result.phases:
            total = sum(v for k, v in result.phases.items()
                        if k.endswith("_seconds"))
            for key in sorted(result.phases,
                              key=lambda k: -result.phases[k]):
                if not key.endswith("_seconds"):
                    continue
                seconds = result.phases[key]
                share = seconds / total if total else 0.0
                print(f"    {key[:-8]:10s} {seconds:8.3f}s  {share:6.1%}")
        if baseline is not None:
            if name not in baseline:
                print(f"    (no baseline entry for {name!r}; not gated)")
            else:
                try:
                    found = check_regression(
                        result, baseline[name],
                        max_regression=args.max_regression)
                except ValueError as exc:
                    return _fail(exc)
                failures.extend(found)
                for failure in found:
                    print(f"    GATE FAIL: {failure}")

    if args.write_baseline:
        path = write_baseline(results, args.write_baseline)
        print(f"baseline written -> {path}")
    if failures:
        print(f"perf gate: {len(failures)} benchmark(s) regressed more "
              f"than {args.max_regression:.0%} "
              f"({bench_filename('<name>')} files still written)",
              file=sys.stderr)
        return 1
    return 0


def _resolve_rv32i(name: str):
    """A program argument -> :class:`Rv32iWorkload` (clean errors)."""
    from repro.isa.rv32i.workload import Rv32iWorkload

    workload = default_registry().resolve(name)
    if not isinstance(workload, Rv32iWorkload):
        raise ValueError(
            f"{name!r} resolves to a {type(workload).__name__}, not an "
            f"RV32I program; pass a bundled kernel name or a .hex/.bin "
            f"image path")
    return workload


_ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)


def _cmd_rv32i_run(args: argparse.Namespace) -> int:
    try:
        workload = _resolve_rv32i(args.program)
    except (KeyError, OSError, ValueError) as exc:
        return _fail(exc)
    machine = workload.program.machine()
    retired = machine.run(max_steps=args.max_steps)
    print(f"{workload.name}: {retired} instructions retired, "
          f"halt={machine.halt_reason or 'step cap reached'} "
          f"at pc=0x{machine.pc:x}")
    print(f"  image      {len(workload.program.words)} words "
          f"(sha256 {workload.digest[:12]}…)")
    print(f"  mem digest {machine.memory_digest()}")
    print(f"  mem bytes  {sum(1 for b in machine.mem.values() if b)} "
          f"non-zero")
    for index in range(32):
        value = machine.regs[index]
        if args.regs or value:
            print(f"  x{index:<2d} ({_ABI_NAMES[index]:>4s}) "
                  f"0x{value:08x}  {value}")
    return 0 if machine.halted else 1


def _cmd_rv32i_capture(args: argparse.Namespace) -> int:
    try:
        workload = _resolve_rv32i(args.program)
    except (KeyError, OSError, ValueError) as exc:
        return _fail(exc)
    seed = args.seed if args.seed is not None else workload.seed
    uops = args.uops if args.uops is not None else default_capture_uops()
    output = args.output or f"{workload.name}.trc"
    provenance = {
        "workload": workload.name,
        "description": workload.description,
        "is_fp": workload.is_fp,
        "seed": seed,
        "source_hash": workload.content_hash(),
        "image_sha": workload.digest,
    }
    try:
        info = capture(workload.build_trace(seed), output, uops,
                       wp_seed=seed, provenance=provenance,
                       compress=not args.no_compress)
    except (OSError, ValueError) as exc:
        return _fail(exc)
    print(f"captured {info.uop_count} µops of {workload.name!r} -> {output}")
    print(f"  digest     {info.digest}")
    print(f"  image sha  {workload.digest}")
    print(f"  size       {info.file_bytes} bytes")
    return 0


def _cmd_rv32i_check() -> int:
    from repro.isa.rv32i.asm import AsmError, assemble, to_hex
    from repro.isa.rv32i.corpus import BUNDLED, bundled_programs

    programs = bundled_programs()
    if not programs:
        return _fail(ValueError(
            "no bundled corpus found (examples/rv32i missing and "
            "REPRO_RV32I_DIR unset)"))
    failures = 0
    for name in BUNDLED:
        image = programs.get(name)
        if image is None:
            print(f"  {name:14s} MISSING image")
            failures += 1
            continue
        listing = image.with_suffix(".s")
        if not listing.is_file():
            print(f"  {name:14s} MISSING listing {listing.name}")
            failures += 1
            continue
        try:
            text = to_hex(assemble(listing.read_text()))
        except AsmError as exc:
            print(f"  {name:14s} ASSEMBLY FAILED: {exc}")
            failures += 1
            continue
        if image.read_text() != text:
            print(f"  {name:14s} STALE: {image.name} differs from "
                  f"re-assembled {listing.name}")
            failures += 1
        else:
            print(f"  {name:14s} ok ({len(text.splitlines())} words)")
    if failures:
        print(f"rv32i check: {failures} problem(s)", file=sys.stderr)
        return 1
    print(f"rv32i check: all {len(BUNDLED)} bundled images match their "
          f"listings")
    return 0


def _cmd_list() -> int:
    registry = default_registry()
    kinds = registry.names()
    print("workloads (suite + scenario specs + recorded traces + rv32i "
          "programs on the registry search path):")
    for name, workload in registry.entries():
        kind = kinds.get(name, "suite")
        klass = "FP " if workload.is_fp else "INT"
        print(f"  {name:16s} [{klass}] ({kind}) {workload.description}")
    print("\nconfiguration presets (grammar: see repro.core.presets):")
    for name in PRESET_NAMES:
        print(f"  {name}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "table1":
        print(render_table1())
        return 0
    if args.command == "table2":
        print(render_table2(Settings.from_env(),
                            options=_engine_options(args)))
        return 0
    if args.command == "figure":
        return _cmd_figure(args.number, _engine_options(args))
    if args.command == "sweep":
        return _cmd_sweep(args.file, _engine_options(args),
                          show_progress=args.progress)
    if args.command == "trace":
        if args.trace_command == "record":
            return _cmd_trace_record(args)
        if args.trace_command == "info":
            return _cmd_trace_info(args)
        if args.trace_command == "replay":
            return _cmd_trace_replay(args)
    if args.command == "checkpoint":
        if args.checkpoint_command == "create":
            return _cmd_checkpoint_create(args)
        if args.checkpoint_command == "info":
            return _cmd_checkpoint_info(args)
        if args.checkpoint_command == "rebase":
            return _cmd_checkpoint_rebase(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "events":
        if args.events_command == "record":
            return _cmd_events_record(args)
        if args.events_command == "info":
            return _cmd_events_info(args)
        if args.events_command == "dump":
            return _cmd_events_dump(args)
        if args.events_command == "export":
            return _cmd_events_export(args)
    if args.command == "report":
        if args.report_command == "manifests":
            return _cmd_report_manifests(args)
    if args.command == "rv32i":
        if args.rv32i_command == "run":
            return _cmd_rv32i_run(args)
        if args.rv32i_command == "capture":
            return _cmd_rv32i_capture(args)
        if args.rv32i_command == "check":
            return _cmd_rv32i_check()
    if args.command == "list":
        return _cmd_list()
    return 1


if __name__ == "__main__":      # pragma: no cover
    sys.exit(main())
