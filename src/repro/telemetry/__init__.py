"""Telemetry: pipeline event traces, metric probes, run manifests.

Three observability layers over the simulator, all strictly opt-in (an
uninstrumented run never imports this package from its hot path, and an
instrumented run's architectural counters are bit-identical — asserted
by the test suite and re-checked by the ``telemetry`` benchmark):

* **events** — per-µop lifecycle events from the pipeline stages onto a
  pluggable bus (:mod:`repro.telemetry.events`, emitting stage
  subclasses in :mod:`repro.telemetry.stages`), recordable to versioned
  JSONL (optionally gzip'd) and exportable to the gem5/Konata
  O3PipeView format (:mod:`repro.telemetry.export`);
* **probes** — per-cycle structure occupancy histograms and event-bus
  aggregates distilled into ``SimStats.telemetry``
  (:mod:`repro.telemetry.probes`, surfaced by ``repro run --metrics``);
* **manifests** — per-cell engine run records (wall time, cache
  hit/miss, peak RSS) written next to the result cache
  (:mod:`repro.telemetry.manifest`, rolled up by
  ``repro report manifests``).

``docs/OBSERVABILITY.md`` is the user-facing guide.
"""

from repro.telemetry.events import (
    AggregatorSink,
    EVENT_FIELDS,
    EVENT_KINDS,
    EVENTS_FORMAT,
    EVENTS_VERSION,
    EventBus,
    EventsFormatError,
    JsonlEventWriter,
    NULL_BUS,
    RingBufferSink,
    count_events,
    null_emit,
    open_events,
)
from repro.telemetry.export import export_o3pipeview, write_o3pipeview
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    manifests_dir,
    peak_rss_kb,
    read_manifests,
    render_rollup,
    rollup,
    write_manifest,
)
from repro.telemetry.probes import (
    MetricsCollector,
    OccupancyProbe,
    render_metrics,
)
from repro.telemetry.stages import TELEMETRY_STAGES

__all__ = [
    "AggregatorSink",
    "EVENT_FIELDS",
    "EVENT_KINDS",
    "EVENTS_FORMAT",
    "EVENTS_VERSION",
    "EventBus",
    "EventsFormatError",
    "JsonlEventWriter",
    "MANIFEST_SCHEMA",
    "MetricsCollector",
    "NULL_BUS",
    "OccupancyProbe",
    "RingBufferSink",
    "TELEMETRY_STAGES",
    "build_manifest",
    "count_events",
    "export_o3pipeview",
    "manifests_dir",
    "null_emit",
    "open_events",
    "peak_rss_kb",
    "read_manifests",
    "render_metrics",
    "render_rollup",
    "rollup",
    "write_manifest",
    "write_o3pipeview",
]
