"""Engine run manifests: one small JSON record per executed cell.

A *manifest* answers "what did the engine actually do for this cell?"
— which configuration and workload, at what volumes, whether the result
came from the cache, how long the simulation took and how much memory
the worker peaked at. Manifests are keyed and named by the cell's cache
key, so re-running a sweep overwrites each cell's record in place (the
directory always reflects the latest execution of every cell).

Layout, next to the persistent result cache::

    <REPRO_CACHE_DIR>/manifests/<key>.json

Writes are atomic (tempfile + ``os.replace``), mirroring the cache's
discipline; when the persistent cache is disabled manifests are skipped
too — there is no run directory to anchor them.

``repro report manifests`` rolls the directory up into a per-config ×
per-workload wall-time/hit-rate table (:func:`rollup` /
:func:`render_rollup`).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "manifests_dir",
    "peak_rss_kb",
    "read_manifests",
    "render_rollup",
    "rollup",
    "write_manifest",
]

#: Bumped when the manifest record layout changes.
MANIFEST_SCHEMA = 1


def peak_rss_kb() -> int:
    """This process's peak resident set size in KiB (0 when unknown).

    ``ru_maxrss`` is KiB on Linux; the one platform where it is bytes
    (macOS) is close enough for a telemetry record — the field is for
    spotting runaway cells, not accounting.
    """
    try:
        import resource
    except ImportError:                      # non-POSIX platform
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def manifests_dir(cache_dir: Optional[Path]) -> Optional[Path]:
    """The manifest directory for a resolved cache directory (or None)."""
    if cache_dir is None:
        return None
    return Path(cache_dir) / "manifests"


def _workload_label(workload_data: Dict[str, Any]) -> str:
    kind = workload_data.get("kind", "spec")
    if kind in ("spec", "scenario"):
        return str(workload_data.get("spec", {}).get("name", "?"))
    if kind == "trace":
        return str(workload_data.get("name")
                   or workload_data.get("digest", "?")[:12])
    return "?"


def build_manifest(payload: Dict[str, Any], key: str, *,
                   cached: bool, wall_seconds: float,
                   peak_rss_kb: int = 0, jobs: int = 1) -> Dict[str, Any]:
    """The manifest record for one cell execution (JSON-able)."""
    workload_data = payload["workload"]
    record: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "key": key,
        "config": payload["config"].get("name", "?"),
        "workload": _workload_label(workload_data),
        "workload_kind": workload_data.get("kind", "spec"),
        "warmup_uops": payload["warmup_uops"],
        "measure_uops": payload["measure_uops"],
        "functional_warmup_uops": payload["functional_warmup_uops"],
        "seed": payload["seed"],
        "code_version": payload["code_version"],
        "cached": bool(cached),
        "wall_seconds": round(float(wall_seconds), 6),
        "peak_rss_kb": int(peak_rss_kb),
        "jobs": int(jobs),
    }
    if workload_data.get("kind") == "trace":
        record["workload_digest"] = workload_data.get("digest")
    checkpoint = payload.get("checkpoint")
    if checkpoint is not None:
        record["checkpoint_digest"] = checkpoint.get("digest")
    sampling = payload.get("sampling")
    if sampling is not None:
        record["sampling_interval"] = sampling.get("index")
    produce = payload.get("produce")
    if produce is not None:
        record["produce_position"] = produce.get("position")
    return record


def write_manifest(directory: Path, manifest: Dict[str, Any]) -> Path:
    """Atomically write ``manifest`` as ``<key>.json`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{manifest['key']}.json"
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(manifest, handle, sort_keys=True, indent=1)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def read_manifests(directory) -> List[Dict[str, Any]]:
    """Every readable current-schema manifest under ``directory``.

    Unreadable or foreign-schema files are skipped silently — the
    directory is shared telemetry, not a database.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    manifests = []
    for path in sorted(directory.glob("*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if isinstance(record, dict) \
                and record.get("schema") == MANIFEST_SCHEMA:
            manifests.append(record)
    return manifests


def rollup(manifests: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate manifests into per-config and per-workload summaries."""
    total = {"cells": 0, "cached": 0, "simulated": 0,
             "wall_seconds": 0.0, "peak_rss_kb": 0}
    by_config: Dict[str, Dict[str, Any]] = {}
    by_workload: Dict[str, Dict[str, Any]] = {}
    for record in manifests:
        for bucket in (total,
                       by_config.setdefault(record["config"], {
                           "cells": 0, "cached": 0, "simulated": 0,
                           "wall_seconds": 0.0, "peak_rss_kb": 0}),
                       by_workload.setdefault(record["workload"], {
                           "cells": 0, "cached": 0, "simulated": 0,
                           "wall_seconds": 0.0, "peak_rss_kb": 0})):
            bucket["cells"] += 1
            if record["cached"]:
                bucket["cached"] += 1
            else:
                bucket["simulated"] += 1
                bucket["wall_seconds"] += record["wall_seconds"]
            bucket["peak_rss_kb"] = max(bucket["peak_rss_kb"],
                                        record["peak_rss_kb"])
    return {"total": total,
            "by_config": dict(sorted(by_config.items())),
            "by_workload": dict(sorted(by_workload.items()))}


def render_rollup(summary: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`rollup` summary."""
    total = summary["total"]
    lines = [
        f"cells: {total['cells']}  "
        f"(simulated {total['simulated']}, cached {total['cached']})",
        f"simulated wall time: {total['wall_seconds']:.2f}s   "
        f"peak RSS: {total['peak_rss_kb']:,} KiB",
    ]
    for title, table in (("by config", summary["by_config"]),
                         ("by workload", summary["by_workload"])):
        if not table:
            continue
        lines.append(f"{title}:")
        lines.append(f"  {'name':<24}{'cells':>6}{'cached':>8}"
                     f"{'wall (s)':>10}{'rss (KiB)':>11}")
        for name, bucket in table.items():
            lines.append(
                f"  {name:<24}{bucket['cells']:>6}{bucket['cached']:>8}"
                f"{bucket['wall_seconds']:>10.2f}"
                f"{bucket['peak_rss_kb']:>11,}")
    return "\n".join(lines)
