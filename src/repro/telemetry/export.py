"""Export event traces to the gem5 O3PipeView text format.

The O3PipeView format is the de-facto interchange for per-instruction
pipeline visualisation: gem5's ``util/o3-pipeview.py`` renders it as
ASCII art and `Konata <https://github.com/shioyadan/Konata>`_ renders it
interactively. One record per µop::

    O3PipeView:fetch:<tick>:0x<pc>:0:<sn>:<disasm>
    O3PipeView:decode:<tick>
    O3PipeView:rename:<tick>
    O3PipeView:dispatch:<tick>
    O3PipeView:issue:<tick>
    O3PipeView:complete:<tick>
    O3PipeView:retire:<tick>:store:<store-completion-tick>

Ticks are picoseconds in gem5; we export ``cycle * TICKS_PER_CYCLE`` (a
1 GHz clock), and ``0`` for a stage the µop never reached (the viewers'
convention for flushed instructions). Decode is reported at the fetch
cycle and dispatch at the rename cycle — this machine fuses those pairs
(see ``docs/ARCHITECTURE.md``); re-issued µops report their *last*
issue, matching how gem5 reports replayed instructions.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, TextIO, Tuple

from repro.isa.opclass import OpClass
from repro.telemetry.events import (
    EV_COMMIT,
    EV_FETCH,
    EV_ISSUE,
    EV_RENAME,
    EV_SQUASH,
    EV_WRITEBACK,
    open_events,
)

__all__ = ["TICKS_PER_CYCLE", "export_o3pipeview", "write_o3pipeview"]

#: Tick scale: one simulated cycle = 1000 gem5 ticks (a 1 GHz clock).
TICKS_PER_CYCLE = 1000

#: record layout: [fetch, rename, issue, complete, retire, opclass,
#: pc, wrong_path, squashed] — cycles are -1 until observed.
_F, _R, _I, _C, _RET, _OP, _PC, _WP, _SQ = range(9)


def _collect(events: Iterable[tuple]) -> Dict[int, list]:
    records: Dict[int, list] = {}
    for cycle, kind, seq, pc, a, b in events:
        record = records.get(seq)
        if record is None:
            record = records[seq] = [-1, -1, -1, -1, -1, -1, 0, 0, 0]
        if kind == EV_FETCH:
            record[_F] = cycle
            record[_PC] = pc
            record[_WP] = a
            record[_OP] = b
        elif kind == EV_RENAME:
            record[_R] = cycle
        elif kind == EV_ISSUE:
            record[_I] = cycle      # last issue wins (replays re-issue)
            record[_C] = -1         # a re-issue voids the stale completion
        elif kind == EV_WRITEBACK:
            record[_C] = cycle
        elif kind == EV_COMMIT:
            record[_RET] = cycle
        elif kind == EV_SQUASH:
            record[_SQ] = 1
    return records


def _disasm(record: list) -> str:
    try:
        mnemonic = OpClass(record[_OP]).name.lower()
    except ValueError:
        mnemonic = f"op{record[_OP]}"
    return f"{mnemonic} (wrong-path)" if record[_WP] else mnemonic


def _tick(cycle: int) -> int:
    return cycle * TICKS_PER_CYCLE if cycle >= 0 else 0


def write_o3pipeview(events: Iterable[tuple], out: TextIO) -> int:
    """Write O3PipeView records for ``events``; returns µops written.

    µops that never reached rename (still in the frontend pipe at the
    end of the run) have no events and are naturally absent; µops that
    were flushed mid-flight appear with ``0`` for the stages they never
    reached, which the viewers render as squashed.
    """
    records = _collect(events)
    for seq in sorted(records):
        record = records[seq]
        retired = record[_RET] >= 0
        out.write(f"O3PipeView:fetch:{_tick(record[_F])}"
                  f":0x{record[_PC]:08x}:0:{seq}:{_disasm(record)}\n")
        out.write(f"O3PipeView:decode:{_tick(record[_F])}\n")
        out.write(f"O3PipeView:rename:{_tick(record[_R])}\n")
        out.write(f"O3PipeView:dispatch:{_tick(record[_R])}\n")
        out.write(f"O3PipeView:issue:{_tick(record[_I])}\n")
        out.write(f"O3PipeView:complete:{_tick(record[_C])}\n")
        if retired:
            out.write(f"O3PipeView:retire:{_tick(record[_RET])}"
                      f":store:{_tick(record[_C])}\n")
        else:
            out.write("O3PipeView:retire:0:store:0\n")
    return len(records)


def export_o3pipeview(events_path, out_path) -> Tuple[Dict[str, Any], int]:
    """Convert an event-trace file to an O3PipeView text file.

    Returns ``(event-trace header, µops written)``.
    """
    header, events = open_events(events_path)
    from pathlib import Path

    with Path(out_path).open("w", encoding="utf-8") as out:
        count = write_o3pipeview(events, out)
    return header, count
