"""Event-emitting stage subclasses (installed when a bus is attached).

Building a :class:`~repro.pipeline.cpu.Simulator` with ``event_bus=``
swaps these classes in through the ordinary ``stage_overrides``
mechanism (PR 5's instrumentation seam) — the same technique as
:mod:`repro.experiments.timeline`'s tracing stages. The default stage
list never sees them, so the events-off hot loop is byte-for-byte the
uninstrumented code.

Each override calls the base implementation first and then emits; none
of them touches machine state, so an instrumented run's ``SimStats``
are bit-identical to an uninstrumented one (asserted by the telemetry
test suite and re-checked by the ``telemetry`` benchmark on every run).
"""

from __future__ import annotations

from repro.isa.opclass import EXEC_LATENCY_BY_OP
from repro.pipeline.stages.commit import Commit
from repro.pipeline.stages.execute import Execute
from repro.pipeline.stages.issue import Issue
from repro.pipeline.stages.rename import Rename
from repro.pipeline.stages.writeback import Writeback
from repro.telemetry.events import (
    EV_COMMIT,
    EV_EXECUTE,
    EV_FETCH,
    EV_FILTER_OUT,
    EV_FILTER_PRED,
    EV_ISSUE,
    EV_RECOVER,
    EV_RENAME,
    EV_REPLAY,
    EV_SQUASH,
    EV_VIOLATION,
    EV_WRITEBACK,
    SQUASH_BRANCH,
    SQUASH_REPLAY,
    SQUASH_VIOLATION,
)

__all__ = [
    "TELEMETRY_STAGES",
    "TelemetryCommit",
    "TelemetryExecute",
    "TelemetryIssue",
    "TelemetryRename",
    "TelemetryWriteback",
]


class TelemetryRename(Rename):
    """Rename override: per-µop ``fetch`` + ``rename`` events.

    The ``fetch`` event is emitted at rename-delivery time but stamped
    with the µop's recorded fetch cycle, so wrong-path µops synthesized
    lazily by the frontend are covered too. µops still inside the
    frontend pipe when the run ends are never delivered and therefore
    never appear in the trace.
    """

    def __init__(self, sim) -> None:
        super().__init__(sim)
        self.events = sim.event_bus

    def _dispatch(self, uop, now: int) -> None:
        super()._dispatch(uop, now)
        emit = self.events.emit
        emit(uop.fetch_cycle, EV_FETCH, uop.seq, uop.pc,
             1 if uop.wrong_path else 0, int(uop.opclass))
        emit(now, EV_RENAME, uop.seq, uop.pc)


class TelemetryIssue(Issue):
    """Issue override: ``issue``/``recover`` plus the filter prediction."""

    def __init__(self, sim) -> None:
        super().__init__(sim)
        self.events = sim.event_bus

    def _do_issue(self, uop, now: int, loads_before: int) -> None:
        was_replay = uop.replay_pending
        super()._do_issue(uop, now, loads_before)
        emit = self.events.emit
        emit(now, EV_ISSUE, uop.seq, uop.pc, uop.num_issues,
             uop.promised_latency)
        if was_replay:
            emit(now, EV_RECOVER, uop.seq, uop.pc, uop.num_issues - 1)
        if uop.is_load:
            # The policy's wakeup promise, as actually applied: the
            # paper-critical hit/miss-filter prediction point.
            emit(now, EV_FILTER_PRED, uop.seq, uop.pc,
                 1 if uop.spec_woken else 0, uop.promised_latency)


class TelemetryExecute(Execute):
    """Execute override: execution, replay triggers and squash cascades."""

    def __init__(self, sim) -> None:
        super().__init__(sim)
        self.events = sim.event_bus

    def _execute_uop(self, uop, now: int) -> None:
        super()._execute_uop(uop, now)
        self.events.emit(
            now, EV_EXECUTE, uop.seq, uop.pc,
            uop.actual_latency if uop.is_load
            else EXEC_LATENCY_BY_OP[uop.opclass],
            1 if (uop.is_load and uop.l1_hit) else 0)

    def _schedule_completion(self, uop, cycle: int, now: int) -> None:
        super()._schedule_completion(uop, cycle, now)
        if cycle <= now:
            # Same-cycle completions bypass the writeback latch; emit
            # their writeback here so every µop's lifecycle closes.
            self.events.emit(now, EV_WRITEBACK, uop.seq, uop.pc)

    def _note_replay(self, events, doomed, now: int) -> None:
        emit = self.events.emit
        for event in events:
            load = event.load
            emit(now, EV_REPLAY, load.seq, load.pc, len(doomed),
                 now - load.issue_cycle)
        for uop in doomed:
            emit(now, EV_SQUASH, uop.seq, uop.pc, SQUASH_REPLAY)

    def _note_squash(self, cause: str, trigger, doomed, now: int) -> None:
        emit = self.events.emit
        if cause == "violation":
            emit(now, EV_VIOLATION, trigger.seq, trigger.pc, len(doomed))
            code = SQUASH_VIOLATION
        else:
            code = SQUASH_BRANCH
        for uop in doomed:
            emit(now, EV_SQUASH, uop.seq, uop.pc, code)


class TelemetryWriteback(Writeback):
    """Writeback override: completion events for latch-delivered µops."""

    def __init__(self, sim) -> None:
        super().__init__(sim)
        self.events = sim.event_bus

    def tick(self, now: int) -> None:
        entries = self._slots.pop(now, None)
        if not entries:
            return
        rob = self.rob
        emit = self.events.emit
        for uop, issue_id in entries:
            if uop.dead or uop.num_issues != issue_id or not uop.executed:
                continue
            rob.note_completed(uop)
            emit(now, EV_WRITEBACK, uop.seq, uop.pc)


class TelemetryCommit(Commit):
    """Commit override: retirement plus the filter-outcome event."""

    def __init__(self, sim) -> None:
        super().__init__(sim)
        self.events = sim.event_bus

    def _retire(self, head, now: int) -> None:
        super()._retire(head, now)
        emit = self.events.emit
        emit(now, EV_COMMIT, head.seq, head.pc)
        if head.is_load:
            # Prediction (the wakeup promise made at issue) vs ground
            # truth: the hit/miss-filter training signal.
            emit(now, EV_FILTER_OUT, head.seq, head.pc,
                 1 if head.spec_woken else 0, 1 if head.l1_hit else 0)


#: ``stage name -> event-emitting class`` — merged into ``stage_overrides``
#: by the Simulator constructor when an ``event_bus`` is supplied.
TELEMETRY_STAGES = {
    "rename": TelemetryRename,
    "issue": TelemetryIssue,
    "execute": TelemetryExecute,
    "writeback": TelemetryWriteback,
    "commit": TelemetryCommit,
}
