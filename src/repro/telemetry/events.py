"""The pipeline event bus: per-µop lifecycle events and pluggable sinks.

An *event* is a flat 6-tuple ``(cycle, kind, seq, pc, a, b)`` — cheap
enough to emit from stage hot paths when recording is on, and trivially
serializable. ``kind`` is one of the :data:`EVENT_KINDS` strings; the
meaning of the two payload integers ``a``/``b`` is per-kind (documented
next to each ``EV_*`` constant and in ``docs/OBSERVABILITY.md``).

The bus itself is a thin fan-out. When a simulator is built *without* a
bus (the default) nothing here is even imported into the tick path —
the stage list uses the plain stage classes and the hot loop is
bit-identical to an uninstrumented build. :data:`NULL_BUS` exists for
code that wants an unconditionally callable ``emit`` anyway; its emit is
the module-level no-op :func:`null_emit`, so such a caller pays one
attribute lookup and one falsy-cheap call, nothing more.

Sinks implement one method, ``emit(cycle, kind, seq, pc=0, a=0, b=0)``:

* :class:`RingBufferSink` — bounded in-memory tail for tests and
  interactive inspection;
* :class:`JsonlEventWriter` — streaming (optionally gzip'd) JSONL file
  with a versioned header + provenance line, mirroring the binary trace
  format's header/provenance discipline (:mod:`repro.traces.format`);
* :class:`AggregatorSink` — running histograms (replay distance, burst
  length, per-PC filter accuracy) for the ``--metrics`` report.
"""

from __future__ import annotations

import gzip
import json
from collections import deque
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "AggregatorSink",
    "EVENT_FIELDS",
    "EVENT_KINDS",
    "EVENTS_FORMAT",
    "EVENTS_VERSION",
    "EventBus",
    "EventsFormatError",
    "JsonlEventWriter",
    "NULL_BUS",
    "RingBufferSink",
    "SQUASH_CAUSES",
    "null_emit",
    "open_events",
]

EVENTS_FORMAT = "repro-events"
#: Bumped when the line layout or field semantics change.
EVENTS_VERSION = 1
#: Field order of every event tuple / JSONL array line.
EVENT_FIELDS = ("cycle", "kind", "seq", "pc", "a", "b")

# -- event kinds (a/b payload meanings) -------------------------------------

EV_FETCH = "fetch"              # a: wrong_path (0/1)     b: opclass value
EV_RENAME = "rename"            # µop entered the OoO window
EV_ISSUE = "issue"              # a: num_issues           b: promised latency
EV_RECOVER = "recover"          # re-issue after replay; a: prior issues
EV_EXECUTE = "execute"          # a: actual latency       b: L1 hit (loads)
EV_WRITEBACK = "writeback"      # completion observed by the ROB
EV_COMMIT = "commit"            # architectural retirement
EV_FILTER_PRED = "filter_pred"  # a: speculate (0/1)      b: promised latency
EV_FILTER_OUT = "filter_out"    # a: predicted hit (0/1)  b: actual hit (0/1)
EV_REPLAY = "replay"            # a: squashed µops        b: issue-to-detect
EV_SQUASH = "squash"            # a: cause index into SQUASH_CAUSES
EV_VIOLATION = "violation"      # seq/pc: offending load  a: squashed µops

EVENT_KINDS = (
    EV_FETCH, EV_RENAME, EV_ISSUE, EV_RECOVER, EV_EXECUTE, EV_WRITEBACK,
    EV_COMMIT, EV_FILTER_PRED, EV_FILTER_OUT, EV_REPLAY, EV_SQUASH,
    EV_VIOLATION,
)

#: ``EV_SQUASH``'s ``a`` field indexes this tuple.
SQUASH_CAUSES = ("replay", "branch", "violation")
SQUASH_REPLAY, SQUASH_BRANCH, SQUASH_VIOLATION = range(3)


def null_emit(cycle: int, kind: str, seq: int,
              pc: int = 0, a: int = 0, b: int = 0) -> None:
    """The disabled-telemetry emit: a module-level no-op."""


class EventBus:
    """Fan-out from emission points to the attached sinks.

    With exactly one sink ``emit`` is the sink's own bound method — the
    common recording configuration pays no fan-out loop. With none it is
    :func:`null_emit`. Emission points read ``bus.emit`` per call (never
    capture it at construction), so sinks may be attached mid-run — e.g.
    a trace writer attached only after warmup.
    """

    def __init__(self, *sinks) -> None:
        self._sinks: List[Any] = []
        self.emit = null_emit
        for sink in sinks:
            self.attach(sink)

    def attach(self, sink):
        """Add ``sink`` (returns it, for assignment-friendly call sites)."""
        self._sinks.append(sink)
        if len(self._sinks) == 1:
            self.emit = self._sinks[0].emit
        else:
            self.emit = self._fanout
        return sink

    @property
    def sinks(self) -> Tuple[Any, ...]:
        return tuple(self._sinks)

    def _fanout(self, cycle: int, kind: str, seq: int,
                pc: int = 0, a: int = 0, b: int = 0) -> None:
        for sink in self._sinks:
            sink.emit(cycle, kind, seq, pc, a, b)


#: Shared always-disabled bus; its ``emit`` never changes.
NULL_BUS = EventBus()


# ---------------------------------------------------------------------------
# Sinks


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65_536) -> None:
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)

    def emit(self, cycle: int, kind: str, seq: int,
             pc: int = 0, a: int = 0, b: int = 0) -> None:
        self._events.append((cycle, kind, seq, pc, a, b))

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[tuple]:
        """Oldest-first snapshot of the retained tail."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()


class AggregatorSink:
    """Running histograms over the event stream (no per-event storage).

    Feeds the ``SimStats.telemetry`` table: replay distance and burst
    histograms from ``replay`` events, per-PC hit/miss-filter accuracy
    from ``filter_out`` events, plus a per-kind event census.
    """

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        #: issue→detection distance (cycles) -> occurrences.
        self.issue_to_replay: Dict[int, int] = {}
        #: squashed-µop count per replay event -> occurrences.
        self.replay_burst: Dict[int, int] = {}
        #: pc -> [pred-hit/hit, pred-hit/miss, pred-miss/hit, pred-miss/miss].
        self.filter_pcs: Dict[int, List[int]] = {}

    def emit(self, cycle: int, kind: str, seq: int,
             pc: int = 0, a: int = 0, b: int = 0) -> None:
        counts = self.counts
        counts[kind] = counts.get(kind, 0) + 1
        if kind == EV_REPLAY:
            self.replay_burst[a] = self.replay_burst.get(a, 0) + 1
            self.issue_to_replay[b] = self.issue_to_replay.get(b, 0) + 1
        elif kind == EV_FILTER_OUT:
            cells = self.filter_pcs.get(pc)
            if cells is None:
                cells = self.filter_pcs[pc] = [0, 0, 0, 0]
            cells[(0 if a else 2) + (0 if b else 1)] += 1

    def filter_accuracy(self) -> float:
        """Fraction of committed loads whose wakeup promise was right."""
        correct = wrong = 0
        for hh, hm, mh, mm in self.filter_pcs.values():
            correct += hh + mm
            wrong += hm + mh
        total = correct + wrong
        return correct / total if total else 0.0

    def report(self) -> Dict[str, Any]:
        """JSON-able summary (string keys) for ``SimStats.telemetry``."""
        return {
            "events": dict(sorted(self.counts.items())),
            "issue_to_replay": {str(k): v for k, v
                                in sorted(self.issue_to_replay.items())},
            "replay_burst": {str(k): v for k, v
                             in sorted(self.replay_burst.items())},
            "filter_pcs": {f"0x{pc:x}": list(cells) for pc, cells
                           in sorted(self.filter_pcs.items())},
        }


class JsonlEventWriter:
    """Streaming JSONL event-trace writer (optionally gzip-compressed).

    Line 1 is a versioned JSON header (format tag, field order,
    caller-supplied provenance); every further line is one event as a
    JSON array in :data:`EVENT_FIELDS` order. Bytes are deterministic —
    the gzip member is written with ``mtime=0`` and no filename, and the
    header carries only what the caller passes — so identical runs
    produce identical files (asserted by the determinism tests).
    """

    def __init__(self, path, provenance: Optional[Dict[str, Any]] = None,
                 compress: Optional[bool] = None,
                 flush_every: int = 8_192) -> None:
        self.path = Path(path)
        self.count = 0
        self._lines: List[str] = []
        self._flush_every = flush_every
        if compress is None:
            compress = self.path.name.endswith(".gz")
        self.compressed = compress
        self._raw = self.path.open("wb")
        if compress:
            # filename="" keeps the path out of the member header: two
            # identical streams must produce identical bytes wherever
            # they are written.
            self._handle = gzip.GzipFile(filename="", fileobj=self._raw,
                                         mode="wb", mtime=0)
        else:
            self._handle = self._raw
        header = {"format": EVENTS_FORMAT, "version": EVENTS_VERSION,
                  "fields": list(EVENT_FIELDS),
                  "provenance": dict(provenance or {})}
        self._handle.write(
            (json.dumps(header, sort_keys=True) + "\n").encode("utf-8"))

    def emit(self, cycle: int, kind: str, seq: int,
             pc: int = 0, a: int = 0, b: int = 0) -> None:
        self._lines.append(f'[{cycle},"{kind}",{seq},{pc},{a},{b}]\n')
        self.count += 1
        if len(self._lines) >= self._flush_every:
            self._drain()

    def _drain(self) -> None:
        if self._lines:
            self._handle.write("".join(self._lines).encode("utf-8"))
            self._lines.clear()

    def close(self) -> None:
        self._drain()
        self._handle.close()
        if self._handle is not self._raw:
            self._raw.close()

    def __enter__(self) -> "JsonlEventWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Reading


class EventsFormatError(ValueError):
    """Raised for files that are not (readable) event traces."""


def _open_text(path: Path):
    handle = path.open("rb")
    magic = handle.read(2)
    handle.seek(0)
    if magic == b"\x1f\x8b":
        return gzip.open(handle, "rt", encoding="utf-8")
    import io

    return io.TextIOWrapper(handle, encoding="utf-8")


def open_events(path) -> Tuple[Dict[str, Any], Iterator[tuple]]:
    """Open an event trace: ``(header, lazy event-tuple iterator)``.

    The iterator owns the file handle and closes it when exhausted (or
    garbage-collected); consume it fully or discard it.
    """
    path = Path(path)
    handle = _open_text(path)
    try:
        first = handle.readline()
        try:
            header = json.loads(first)
        except ValueError as exc:
            raise EventsFormatError(
                f"{path}: not an event trace (bad header: {exc})") from exc
        if not isinstance(header, dict) \
                or header.get("format") != EVENTS_FORMAT:
            raise EventsFormatError(f"{path}: not a {EVENTS_FORMAT} file")
        version = header.get("version")
        if version != EVENTS_VERSION:
            raise EventsFormatError(
                f"{path}: event-trace version {version} "
                f"(this build reads {EVENTS_VERSION})")
        if header.get("fields") != list(EVENT_FIELDS):
            raise EventsFormatError(
                f"{path}: unexpected field order {header.get('fields')}")
    except BaseException:
        handle.close()
        raise

    def _iterate() -> Iterator[tuple]:
        with handle:
            for line in handle:
                if not line.strip():
                    continue
                try:
                    yield tuple(json.loads(line))
                except ValueError as exc:
                    raise EventsFormatError(
                        f"{path}: corrupt event line {line!r}") from exc

    return header, _iterate()


def count_events(path) -> Tuple[Dict[str, Any], Dict[str, int]]:
    """``(header, kind -> count)`` for an event trace file."""
    header, events = open_events(path)
    counts: Dict[str, int] = {}
    for event in events:
        kind = event[1]
        counts[kind] = counts.get(kind, 0) + 1
    return header, counts
