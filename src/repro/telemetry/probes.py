"""Metric probes: per-cycle structure sampling and the metrics collector.

Probes are ordinary pipeline stages inserted through the ``extra_stages``
seam (:func:`repro.pipeline.stages.build_stages`) — the same mechanism a
custom scheduler or tracer uses, so they compose with stage overrides
and appear in the per-stage instrumentation breakdown automatically.
They read shared structures, never write them: a probed run's
``SimStats`` counters are bit-identical to an unprobed run's.

:class:`MetricsCollector` bundles the standard observability kit — an
:class:`~repro.telemetry.events.AggregatorSink` on the event bus plus
the occupancy probe — and distills both into the ``SimStats.telemetry``
table after the run (surfaced by ``repro run --metrics``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.pipeline.stages.base import Stage
from repro.telemetry.events import AggregatorSink, EventBus

__all__ = ["MetricsCollector", "OccupancyProbe", "render_metrics"]


class OccupancyProbe(Stage):
    """Per-cycle occupancy histograms over the backend structures.

    Samples at the end of every cycle (anchored after ``bookkeep``):
    IQ, ROB, load queue, store queue, recovery buffer, and the two
    latch banks (issue→execute, execute→writeback). Each histogram maps
    ``occupancy -> cycles observed at that occupancy``.
    """

    name = "telemetry_occupancy"
    after = "bookkeep"

    STRUCTURES = ("iq", "rob", "lq", "sq", "recovery",
                  "exec_latch", "completion_latch")

    def __init__(self, sim) -> None:
        super().__init__(sim)
        self.iq = sim.iq
        self.rob = sim.rob
        self.lsq = sim.lsq
        self.recovery = sim.recovery
        self.exec_latch = sim.exec_latch
        self.completion_latch = sim.completion_latch
        self.cycles = 0
        self.hists: Dict[str, Dict[int, int]] = {
            name: {} for name in self.STRUCTURES}

    def tick(self, now: int) -> None:
        self.cycles += 1
        hists = self.hists
        for name, value in (
                ("iq", len(self.iq)),
                ("rob", len(self.rob)),
                ("lq", len(self.lsq.loads)),
                ("sq", len(self.lsq.stores)),
                ("recovery", len(self.recovery)),
                ("exec_latch", self.exec_latch.in_flight()),
                ("completion_latch", self.completion_latch.in_flight())):
            hist = hists[name]
            hist[value] = hist.get(value, 0) + 1

    def summary(self) -> Dict[str, Any]:
        """JSON-able per-structure mean/peak + full histograms."""
        out: Dict[str, Any] = {"cycles": self.cycles, "structures": {}}
        for name in self.STRUCTURES:
            hist = self.hists[name]
            total = sum(hist.values())
            weighted = sum(occ * n for occ, n in hist.items())
            out["structures"][name] = {
                "mean": weighted / total if total else 0.0,
                "peak": max(hist) if hist else 0,
                "hist": {str(occ): n for occ, n in sorted(hist.items())},
            }
        return out


class MetricsCollector:
    """The standard metrics kit: aggregator sink + occupancy probe.

    Usage::

        collector = MetricsCollector()
        sim = Simulator(config, trace, event_bus=collector.bus,
                        extra_stages=collector.probes)
        sim.run()
        collector.finalize(sim)      # fills sim.stats.telemetry

    ``bus`` may be pre-populated with extra sinks (e.g. a
    :class:`~repro.telemetry.events.JsonlEventWriter`) before the
    simulator is built.
    """

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self.bus = bus if bus is not None else EventBus()
        self.aggregator = self.bus.attach(AggregatorSink())
        #: Stage classes for ``extra_stages=``. A list of *classes*, per
        #: the seam's contract; the built instance is recovered from the
        #: simulator's stage table at finalize time.
        self.probes: List[type] = [OccupancyProbe]

    def finalize(self, sim, stats=None) -> Dict[str, Any]:
        """Distill the run into ``stats.telemetry`` (default: sim.stats).

        Returns the table that was stored.
        """
        stats = sim.stats if stats is None else stats
        table: Dict[str, Any] = self.aggregator.report()
        table["filter_accuracy"] = self.aggregator.filter_accuracy()
        try:
            probe = sim.stage(OccupancyProbe.name)
        except KeyError:
            probe = None
        if probe is not None:
            table["occupancy"] = probe.summary()
        stats.telemetry = table
        return table


def render_metrics(telemetry: Dict[str, Any]) -> str:
    """Human-readable rendering of a ``SimStats.telemetry`` table."""
    lines: List[str] = []
    events = telemetry.get("events", {})
    if events:
        lines.append("event census:")
        for kind, count in events.items():
            lines.append(f"  {kind:<12} {count:>12,}")
    if "filter_accuracy" in telemetry:
        lines.append(
            f"filter accuracy (committed loads): "
            f"{telemetry['filter_accuracy']:.4f}")
    hist = telemetry.get("issue_to_replay", {})
    if hist:
        lines.append("issue-to-replay distance (cycles -> events):")
        for dist, count in hist.items():
            lines.append(f"  {dist:>4} {count:>10,}")
    hist = telemetry.get("replay_burst", {})
    if hist:
        lines.append("replay burst length (squashed µops -> events):")
        for size, count in hist.items():
            lines.append(f"  {size:>4} {count:>10,}")
    occ = telemetry.get("occupancy")
    if occ:
        lines.append(f"occupancy over {occ['cycles']:,} cycles:")
        lines.append(f"  {'structure':<18}{'mean':>10}{'peak':>8}")
        for name, row in occ["structures"].items():
            lines.append(
                f"  {name:<18}{row['mean']:>10.2f}{row['peak']:>8}")
    pcs = telemetry.get("filter_pcs", {})
    if pcs:
        worst = sorted(
            pcs.items(),
            key=lambda kv: -(kv[1][1] + kv[1][2]))[:10]
        shown = [(pc, cells) for pc, cells in worst
                 if cells[1] + cells[2] > 0]
        if shown:
            lines.append("worst-predicted load PCs (hh/hm/mh/mm):")
            for pc, (hh, hm, mh, mm) in shown:
                lines.append(f"  {pc:<12} {hh:>8} {hm:>8} {mh:>8} {mm:>8}")
    return "\n".join(lines)
