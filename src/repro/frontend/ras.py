"""Return address stack — 32 entries (Table 1), circular overwrite."""

from __future__ import annotations

from typing import List, Tuple


class ReturnAddressStack:
    """Fixed-depth RAS; pushes wrap around and overwrite the oldest entry."""

    def __init__(self, entries: int = 32) -> None:
        if entries < 1:
            raise ValueError("RAS needs at least one entry")
        self.entries = entries
        self._stack: List[int] = [0] * entries
        self._top = 0          # index of next push slot
        self._depth = 0        # live entries (saturates at `entries`)
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_pc: int) -> None:
        self._stack[self._top] = return_pc
        self._top = (self._top + 1) % self.entries
        self._depth = min(self._depth + 1, self.entries)
        self.pushes += 1

    def pop(self) -> int:
        """Predicted return target; 0 on underflow."""
        self.pops += 1
        if self._depth == 0:
            self.underflows += 1
            return 0
        self._top = (self._top - 1) % self.entries
        self._depth -= 1
        return self._stack[self._top]

    def snapshot(self) -> Tuple[int, int, Tuple[int, ...]]:
        """Checkpoint for squash recovery."""
        return (self._top, self._depth, tuple(self._stack))

    def restore(self, snap: Tuple[int, int, Tuple[int, ...]]) -> None:
        self._top, self._depth, stack = snap
        self._stack = list(stack)
