"""Return address stack — 32 entries (Table 1), circular overwrite.

Checkpoints are copy-on-write: the branch unit snapshots the RAS on
*every* predicted branch, and copying the full stack each time dominated
branch prediction cost. Only :meth:`push` mutates the stack contents
(:meth:`pop` just moves the top pointer, which the snapshot captures as
scalars), so the stack tuple is cached and reused until the next push —
conditional-branch-only code takes exactly one copy per simulation, and
call-heavy code one copy per call, never more than the old
copy-per-snapshot scheme. Memory stays O(entries).
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class ReturnAddressStack:
    """Fixed-depth RAS; pushes wrap around and overwrite the oldest entry."""

    def __init__(self, entries: int = 32) -> None:
        if entries < 1:
            raise ValueError("RAS needs at least one entry")
        self.entries = entries
        self._stack: List[int] = [0] * entries
        self._top = 0          # index of next push slot
        self._depth = 0        # live entries (saturates at `entries`)
        self._stack_snapshot: Optional[Tuple[int, ...]] = None
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_pc: int) -> None:
        self._stack[self._top] = return_pc
        self._stack_snapshot = None        # contents changed: drop cache
        self._top = (self._top + 1) % self.entries
        self._depth = min(self._depth + 1, self.entries)
        self.pushes += 1

    def pop(self) -> int:
        """Predicted return target; 0 on underflow."""
        self.pops += 1
        if self._depth == 0:
            self.underflows += 1
            return 0
        self._top = (self._top - 1) % self.entries
        self._depth -= 1
        return self._stack[self._top]

    def snapshot(self) -> Tuple[int, int, Tuple[int, ...]]:
        """Checkpoint for squash recovery (copy-on-write stack tuple)."""
        stack = self._stack_snapshot
        if stack is None:
            stack = self._stack_snapshot = tuple(self._stack)
        return (self._top, self._depth, stack)

    def restore(self, snap: Tuple[int, int, Tuple[int, ...]]) -> None:
        self._top, self._depth, stack = snap
        self._stack = list(stack)
        self._stack_snapshot = stack

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        return {
            "stack": list(self._stack),
            "top": self._top,
            "depth": self._depth,
            "pushes": self.pushes,
            "pops": self.pops,
            "underflows": self.underflows,
        }

    def load_state_dict(self, state: dict) -> None:
        self._stack = list(state["stack"])
        self._top = state["top"]
        self._depth = state["depth"]
        self._stack_snapshot = None      # pure cache: rebuilt on demand
        self.pushes = state["pushes"]
        self.pops = state["pops"]
        self.underflows = state["underflows"]
