"""Frontend: branch prediction (TAGE-lite, BTB, RAS) and the fetch stage."""

from repro.frontend.tage import TageLite
from repro.frontend.btb import Btb
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.branch_unit import BranchUnit
from repro.frontend.fetch import FetchStage

__all__ = ["BranchUnit", "Btb", "FetchStage", "ReturnAddressStack", "TageLite"]
