"""TAGE-lite conditional branch predictor.

A faithful-in-structure, reduced-in-size TAGE (Seznec & Michaud, the
predictor of Table 1): a bimodal base table plus ``num_tagged_tables``
partially tagged tables indexed with geometrically increasing global
history lengths. Each tagged entry holds a 3-bit signed counter, a partial
tag and a useful bit. Prediction comes from the longest-history matching
table; allocation on mispredictions picks a not-useful entry in a longer
table.

The global history is speculatively updated at prediction time;
:meth:`snapshot_history` / :meth:`restore_history` let the pipeline repair
it after a squash, exactly as a real frontend checkpoint would.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.config import BranchPredictorConfig

_CTR_MAX = 3          # 3-bit signed counter range [-4, 3]
_CTR_MIN = -4
_BIMODAL_MAX = 3      # 2-bit saturating

#: Index of the history snapshot in the predict-state tuple (the branch
#: unit rewinds speculative history through it on repair).
STATE_HISTORY = 4


class _TaggedEntry:
    __slots__ = ("tag", "ctr", "useful")

    def __init__(self) -> None:
        self.tag = -1
        self.ctr = 0
        self.useful = 0


class TageLite:
    """TAGE with geometric history lengths."""

    def __init__(self, config: Optional[BranchPredictorConfig] = None,
                 seed: int = 12345) -> None:
        self.config = config or BranchPredictorConfig()
        self.config.validate()
        cfg = self.config
        self._bimodal = [0] * cfg.bimodal_entries
        self._tables: List[List[_TaggedEntry]] = [
            [_TaggedEntry() for _ in range(cfg.table_entries)]
            for _ in range(cfg.num_tagged_tables)
        ]
        # Geometric history lengths from min to max.
        ratio = (cfg.max_history / cfg.min_history) ** (
            1.0 / max(1, cfg.num_tagged_tables - 1))
        self.history_lengths = []
        for i in range(cfg.num_tagged_tables):
            length = int(round(cfg.min_history * ratio ** i))
            if self.history_lengths and length <= self.history_lengths[-1]:
                length = self.history_lengths[-1] + 1
            self.history_lengths.append(length)
        self._history = 0          # global history as an int bitvector
        # Hot-path hash precomputes: per-table history masks and the
        # shared index/tag widths (predict hashes every table per branch).
        self._hist_masks = [(1 << length) - 1
                            for length in self.history_lengths]
        self._index_bits = cfg.table_entries.bit_length() - 1
        self._index_mask = cfg.table_entries - 1
        self._tag_mask = (1 << cfg.tag_bits) - 1
        self._fold_memo = {}
        # Incrementally maintained per-table history folds (see
        # :meth:`_recompute_folds`); valid only while ``_folds_history``
        # equals ``_history``.
        self._fold_idx = [0] * cfg.num_tagged_tables
        self._fold_tag = [0] * cfg.num_tagged_tables
        self._folds_history = -1
        # Per-table advance constants: (oldest-bit shift, index-fold
        # re-entry position, tag-fold re-entry position).
        self._fold_geometry = [
            (length - 1, length % self._index_bits, length % cfg.tag_bits)
            for length in self.history_lengths
        ]
        self._rng_state = seed or 1
        self.predictions = 0
        self.mispredictions = 0

    # -- history management ---------------------------------------------

    def snapshot_history(self) -> int:
        return self._history

    def restore_history(self, snapshot: int) -> None:
        self._history = snapshot

    def _push_history(self, taken: bool) -> None:
        mask = (1 << (self.config.max_history + 1)) - 1
        self._history = ((self._history << 1) | int(taken)) & mask

    # -- hashing ----------------------------------------------------------

    #: The fold memo resets when it reaches this many entries — synthetic
    #: and loopy codes revisit a small set of (history, width) pairs, so
    #: hit rates are high and the cap only guards pathological histories.
    _FOLD_MEMO_LIMIT = 1 << 15

    def _fold(self, value: int, bits: int) -> int:
        memo = self._fold_memo
        key = (value, bits)
        folded = memo.get(key)
        if folded is None:
            folded = 0
            mask = (1 << bits) - 1
            v = value
            while v:
                folded ^= v & mask
                v >>= bits
            if len(memo) >= self._FOLD_MEMO_LIMIT:
                memo.clear()
            memo[key] = folded
        return folded

    def _recompute_folds(self, history: int) -> None:
        """Rebuild the per-table index/tag history folds from scratch.

        The folds are the chunked-XOR folds :meth:`_fold` computes, kept
        as live state: folding is XOR-linear, so shifting one bit into
        the history rotates each fold by one position within its chunk
        width and XORs in/out the entering/leaving bits — the O(tables)
        incremental step at the end of :meth:`predict`. Any other
        history write (squash repair, misprediction repair, checkpoint
        restore) invalidates ``_folds_history`` and lands here. This is
        the frontend's hottest math, and the functional fast-forward
        mode is bounded by it."""
        index_bits = self._index_bits
        index_mask = (1 << index_bits) - 1
        tag_bits = self.config.tag_bits
        tag_mask = (1 << tag_bits) - 1
        fold_idx = self._fold_idx
        fold_tag = self._fold_tag
        for t, hist_mask in enumerate(self._hist_masks):
            hist = history & hist_mask
            folded = 0
            v = hist
            while v:
                folded ^= v & index_mask
                v >>= index_bits
            fold_idx[t] = folded
            folded = 0
            v = hist
            while v:
                folded ^= v & tag_mask
                v >>= tag_bits
            fold_tag[t] = folded
        self._folds_history = history

    def _index(self, pc: int, table: int) -> int:
        bits = self._index_bits
        hist = self._history & self._hist_masks[table]
        return (self._fold(hist, bits) ^ (pc >> 2) ^ (pc >> (bits + 2))
                ^ table) & self._index_mask

    def _tag(self, pc: int, table: int) -> int:
        hist = self._history & self._hist_masks[table]
        return (self._fold(hist, self.config.tag_bits) ^ (pc >> 2)
                ^ (pc * 0x9E3779B1 >> 13)) & self._tag_mask

    def _bimodal_index(self, pc: int) -> int:
        return (pc >> 2) & (self.config.bimodal_entries - 1)

    def _rand(self) -> int:
        # xorshift, deterministic across runs
        x = self._rng_state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._rng_state = x
        return x

    # -- predict / update --------------------------------------------------

    def predict(self, pc: int) -> Tuple[bool, tuple]:
        """Predict ``pc``; returns (taken, state-for-update).

        The state captures provider/alternate components and the history
        snapshot — a plain tuple ``(provider, provider_idx, alt_pred,
        pred, history, pc)`` (see :data:`STATE_HISTORY`); it must be
        passed back to :meth:`update`. Global history is speculatively
        updated with the prediction.
        """
        self.predictions += 1
        provider = -1
        provider_idx = -1
        alt_pred = None
        pred = None
        history = self._history
        if history != self._folds_history:
            self._recompute_folds(history)
        fold_idx = self._fold_idx
        fold_tag = self._fold_tag
        tables = self._tables
        bits = self._index_bits
        index_mask = self._index_mask
        tag_mask = self._tag_mask
        pc_idx = (pc >> 2) ^ (pc >> (bits + 2))
        pc_tag = ((pc >> 2) ^ (pc * 0x9E3779B1 >> 13)) & tag_mask
        for t in range(self.config.num_tagged_tables - 1, -1, -1):
            idx = (fold_idx[t] ^ pc_idx ^ t) & index_mask
            entry = tables[t][idx]
            if entry.tag == (fold_tag[t] ^ pc_tag) & tag_mask:
                if provider == -1:
                    provider, provider_idx = t, idx
                    pred = entry.ctr >= 0
                elif alt_pred is None:
                    alt_pred = entry.ctr >= 0
                    break
        bimodal_pred = self._bimodal[self._bimodal_index(pc)] >= 2
        if alt_pred is None:
            alt_pred = bimodal_pred
        if pred is None:
            pred = bimodal_pred
        state = (provider, provider_idx, alt_pred, pred, history, pc)
        self._push_history(pred)
        # Advance the live folds to the pushed history (rotate-and-XOR;
        # see _recompute_folds): each table shifts in the predicted bit
        # and drops its oldest history bit.
        bit = 1 if pred else 0
        tag_bits = self.config.tag_bits
        for t, (drop_shift, idx_pos, tag_pos) in enumerate(self._fold_geometry):
            dropped = (history >> drop_shift) & 1
            f = fold_idx[t]
            fold_idx[t] = (((f << 1) | (f >> (bits - 1))) & index_mask
                           ) ^ bit ^ (dropped << idx_pos)
            f = fold_tag[t]
            fold_tag[t] = (((f << 1) | (f >> (tag_bits - 1))) & tag_mask
                           ) ^ bit ^ (dropped << tag_pos)
        self._folds_history = self._history
        return pred, state

    def warm_predict(self, pc: int, idxs, tags) -> Tuple[bool, tuple]:
        """:meth:`predict` with precomputed per-table indices and tags.

        ``idxs``/``tags`` are this branch's table indices and partial
        tags, low table first, as the vectorized warming tier folds them
        in bulk (:func:`repro.pipeline.warming.engine.tage_fold_indices`)
        — they must equal what :meth:`predict` would compute for the
        current history. Counter and state effects are identical to
        :meth:`predict`; the live folds are left stale
        (``_folds_history`` no longer matches) and rebuilt by the next
        plain :meth:`predict`.
        """
        self.predictions += 1
        provider = -1
        provider_idx = -1
        alt_pred = None
        pred = None
        tables = self._tables
        for t in range(self.config.num_tagged_tables - 1, -1, -1):
            idx = idxs[t]
            entry = tables[t][idx]
            if entry.tag == tags[t]:
                if provider == -1:
                    provider, provider_idx = t, idx
                    pred = entry.ctr >= 0
                elif alt_pred is None:
                    alt_pred = entry.ctr >= 0
                    break
        bimodal_pred = self._bimodal[self._bimodal_index(pc)] >= 2
        if alt_pred is None:
            alt_pred = bimodal_pred
        if pred is None:
            pred = bimodal_pred
        state = (provider, provider_idx, alt_pred, pred, self._history, pc)
        self._push_history(pred)
        return pred, state

    def update(self, taken: bool, state: tuple) -> None:
        """Train with the actual outcome; call once per predicted branch."""
        provider, provider_idx, alt_pred, pred, history, pc = state
        correct = pred == taken
        if not correct:
            self.mispredictions += 1

        saved_history = self._history
        self._history = history            # rebuild indices as at predict
        try:
            if provider >= 0:
                entry = self._tables[provider][provider_idx]
                entry.ctr = _saturate(entry.ctr + (1 if taken else -1))
                if pred != alt_pred:
                    entry.useful = min(entry.useful + 1, 3) if correct \
                        else max(entry.useful - 1, 0)
            else:
                idx = self._bimodal_index(pc)
                ctr = self._bimodal[idx]
                self._bimodal[idx] = min(ctr + 1, _BIMODAL_MAX) if taken \
                    else max(ctr - 1, 0)
            if not correct:
                self._allocate(pc, taken, provider)
        finally:
            if correct:
                self._history = saved_history
            else:
                # Repair the speculative history: replace the mispredicted
                # bit with the actual outcome (idempotent with the branch
                # unit's own repair, which computes the same value).
                self._history = history
                self._push_history(taken)

    def _allocate(self, pc: int, taken: bool, provider: int) -> None:
        start = provider + 1
        if start >= self.config.num_tagged_tables:
            return
        # Randomize the starting table a little, as real TAGE does.
        if start + 1 < self.config.num_tagged_tables and self._rand() & 1:
            start += 1
        for t in range(start, self.config.num_tagged_tables):
            idx = self._index(pc, t)
            entry = self._tables[t][idx]
            if entry.useful == 0:
                entry.tag = self._tag(pc, t)
                entry.ctr = 0 if taken else -1
                return
            entry.useful -= 1   # age useful bits when allocation fails

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        """Predictor tables + history + RNG (the fold memo is a pure
        cache and is rebuilt empty on load)."""
        return {
            "bimodal": list(self._bimodal),
            "tables": [[(e.tag, e.ctr, e.useful) for e in table]
                       for table in self._tables],
            "history": self._history,
            "rng_state": self._rng_state,
            "predictions": self.predictions,
            "mispredictions": self.mispredictions,
        }

    def load_state_dict(self, state: dict) -> None:
        self._bimodal[:] = state["bimodal"]
        for table, rows in zip(self._tables, state["tables"]):
            for entry, (tag, ctr, useful) in zip(table, rows):
                entry.tag = tag
                entry.ctr = ctr
                entry.useful = useful
        self._history = state["history"]
        self._rng_state = state["rng_state"]
        self.predictions = state["predictions"]
        self.mispredictions = state["mispredictions"]
        self._fold_memo = {}
        self._folds_history = -1


def _saturate(ctr: int) -> int:
    return _CTR_MIN if ctr < _CTR_MIN else _CTR_MAX if ctr > _CTR_MAX else ctr
