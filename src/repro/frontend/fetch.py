"""Fetch stage and the frontend delay pipe.

Fetches up to ``fetch_width`` µops per cycle from a :class:`TraceSource`
(two 16-byte blocks, potentially across one taken branch: a *second*
predicted-taken branch ends the fetch group). Fetched µops travel through a
``frontend_depth``-cycle delay pipe before becoming visible to Rename —
this is the 15−D-cycle in-order frontend of Section 3.1, which shrinks as
the issue-to-execute delay D grows so the branch misprediction penalty
stays constant.

On a branch misprediction the stage switches to *wrong-path mode*: it stops
consuming the correct-path trace and injects synthetic wrong-path µops
(which consume rename/issue/execute resources and show up in the *Unique*
issued-µop counts, as in Figure 4b) until the branch resolves and
:meth:`redirect` is called.

Wrong-path fetch is **lazy**: a long-latency resolving branch (an L2/DRAM
miss feeding a mispredict) keeps the frontend in wrong-path mode for
hundreds of cycles, and an eager frontend would materialize
``fetch_width`` µop objects every one of them only to discard nearly all
at redirect — on miss-heavy workloads that flood used to dominate whole-
simulation wall time. Instead the stage records one *virtual group*
(ready-cycle, count) per wrong-path cycle and synthesizes a µop only when
Rename actually consumes it; at redirect the undelivered remainder is
dropped in bulk while :meth:`TraceSource.skip_wrong_path` advances the
synthesis stream exactly as if the µops had been built. Delivered µops,
their seq numbers and the wrong-path RNG stream are bit-identical to the
eager frontend's.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.common.config import CoreConfig
from repro.common.stats import SimStats
from repro.frontend.branch_unit import BranchUnit
from repro.isa.trace import TraceSource
from repro.isa.uop import MicroOp

#: Cycles between branch resolution and the first re-fetched µop. Together
#: with the constant frontend_depth + D = 15 sum, this keeps the minimum
#: misprediction penalty constant (~20 cycles) across delay configurations.
REDIRECT_BUBBLE = 2


class FetchStage:
    """In-order fetch + frontend delay pipe."""

    def __init__(self, trace: TraceSource, branch_unit: BranchUnit,
                 config: CoreConfig, stats: SimStats) -> None:
        self.trace = trace
        self.branch_unit = branch_unit
        self.config = config
        self.stats = stats
        self.width = config.fetch_width
        self.depth = config.frontend_depth
        # (ready_cycle, uop) in fetch order.
        self.pipe: Deque[Tuple[int, MicroOp]] = deque()
        # Virtual wrong-path groups behind the pipe: [ready_cycle, count]
        # lists in fetch order, materialized on demand (module docstring).
        self._wp_groups: Deque[List[int]] = deque()
        self._wp_pending = 0
        # Correct-path µops to re-fetch after a memory-order violation.
        self.replay_queue: Deque[MicroOp] = deque()
        self.wrong_path = False
        self._wrong_path_pc = 0
        self._stall_until = 0
        self._next_seq = 0
        self.trace_exhausted = False
        self.fetched_correct = 0
        self.fetched_wrong = 0

    # ------------------------------------------------------------------

    def tick(self, now: int) -> None:
        """Fetch one group of µops."""
        if now < self._stall_until:
            return
        if self.wrong_path:
            # Lazy wrong-path fetch: one full-width virtual group per
            # cycle (wrong-path filler is never a branch, so an eager
            # frontend would always fetch the full width too).
            width = self.width
            self._wp_groups.append([now + self.depth, width])
            self._wp_pending += width
            self.fetched_wrong += width
            return
        taken_seen = 0
        pipe_append = self.pipe.append
        replay_queue = self.replay_queue
        next_trace_uop = self.trace.next_uop
        ready = now + self.depth
        for _ in range(self.width):
            if replay_queue:
                uop = replay_queue.popleft()
            else:
                uop = next_trace_uop()
                if uop is None:
                    self.trace_exhausted = True
                    return
            uop.fetch_cycle = now
            uop.seq = self._next_seq
            self._next_seq += 1
            if uop.is_branch and not uop.wrong_path:
                pred_taken, pred_target = self.branch_unit.predict(uop)
                uop.pred_taken = pred_taken
                uop.pred_target = pred_target
                uop.mispredicted = (pred_taken != uop.taken) or (
                    uop.taken and pred_target != uop.target)
                if uop.mispredicted:
                    self.wrong_path = True
                    self._wrong_path_pc = (uop.pred_target if pred_taken
                                           else uop.pc + 1)
            pipe_append((ready, uop))
            if uop.wrong_path:      # only via hand-built test traces
                self.fetched_wrong += 1
            else:
                self.fetched_correct += 1
            if uop.is_branch:
                if uop.pred_taken:
                    taken_seen += 1
                    if taken_seen >= 2:
                        return
                if uop.mispredicted:
                    # Rest of this group comes from the wrong path next cycle.
                    return

    # ------------------------------------------------------------------
    # delivery to Rename

    def peek(self, now: int) -> Optional[MicroOp]:
        """The next µop Rename could take at ``now`` (without taking it).

        Materializes at most one virtual wrong-path µop. Returns ``None``
        when nothing has finished its frontend traversal yet.
        """
        pipe = self.pipe
        if not pipe:
            if not self._wp_groups or not self._materialize_wrong_path(now):
                return None
        ready, uop = pipe[0]
        if ready > now:
            return None
        return uop

    def pop(self) -> MicroOp:
        """Consume the µop :meth:`peek` returned."""
        return self.pipe.popleft()[1]

    def deliver(self, now: int, max_uops: int) -> List[MicroOp]:
        """µops whose frontend traversal completes by ``now`` (for Rename)."""
        out: List[MicroOp] = []
        while len(out) < max_uops:
            uop = self.peek(now)
            if uop is None:
                break
            self.pipe.popleft()
            out.append(uop)
        return out

    def undeliver(self, uops: List[MicroOp], now: int) -> None:
        """Push back µops Rename could not accept this cycle (stall)."""
        for uop in reversed(uops):
            self.pipe.appendleft((now, uop))

    def _materialize_wrong_path(self, now: int) -> bool:
        """Build the oldest virtual wrong-path µop if it is ready by
        ``now``; True when one was appended to the (empty) pipe."""
        group = self._wp_groups[0]
        ready = group[0]
        if ready > now:
            return False
        uop = self.trace.wrong_path_uop(0, self._wrong_path_pc)
        uop.wrong_path = True
        self._wrong_path_pc += 1
        uop.fetch_cycle = ready - self.depth
        uop.seq = self._next_seq
        self._next_seq += 1
        self._wp_pending -= 1
        group[1] -= 1
        if not group[1]:
            self._wp_groups.popleft()
        self.pipe.append((ready, uop))
        return True

    # ------------------------------------------------------------------

    def redirect(self, now: int) -> None:
        """Resolve a mispredicted branch: flush and restart fetch.

        The caller (the core) squashes younger µops everywhere else; here we
        drop everything still inside the frontend, which is by construction
        younger than the resolving branch. Virtual wrong-path µops are
        discarded in bulk: seq numbering and the synthesis stream advance
        exactly as if they had been built (bit-identical to eager fetch).
        """
        self.pipe.clear()
        if self._wp_pending:
            self.trace.skip_wrong_path(self._wp_pending)
            self._next_seq += self._wp_pending
            self._wp_pending = 0
        self._wp_groups.clear()
        self.wrong_path = False
        self._stall_until = now + REDIRECT_BUBBLE
        self.stats.bump("fetch_redirects")

    def squash_all(self, now: int) -> None:
        """Full frontend flush (memory-order violation refetch).

        Unlike a branch redirect — where everything still inside the
        frontend is wrong-path by construction — a violation can flush
        while the pipe holds *correct-path* µops fetched after the last
        branch resolved. Dropping those would lose trace µops forever
        (the trace cursor never rewinds), so they are salvaged into the
        replay queue as fresh clones; only wrong-path filler is
        discarded. The caller re-injects the squashed ROB occupants
        *after* this, putting them ahead of the salvaged µops in
        program order.
        """
        salvaged = [u.clone_arch() for _, u in self.pipe
                    if not u.wrong_path]
        self.redirect(now)
        self.inject_refetch(salvaged)

    def inject_refetch(self, uops_in_program_order: List[MicroOp]) -> None:
        """Queue squashed correct-path µops for re-fetch (violations).

        New clones are older in program order than anything not yet fetched,
        so they go to the *front* of the replay queue.
        """
        for uop in reversed(uops_in_program_order):
            self.replay_queue.appendleft(uop)

    @property
    def done(self) -> bool:
        """True when the trace is exhausted and the pipe has drained."""
        return (self.trace_exhausted and not self.pipe
                and not self.wrong_path and not self.replay_queue)

    # ------------------------------------------------------------------
    # state protocol (repro.checkpoint)

    def state_dict(self, ctx) -> dict:
        """Frontend pipe + wrong-path bookkeeping; trace-cursor state is
        owned by the trace source itself."""
        return {
            "pipe": [(ready, ctx.ref(uop)) for ready, uop in self.pipe],
            "wp_groups": [list(group) for group in self._wp_groups],
            "wp_pending": self._wp_pending,
            "replay_queue": ctx.refs(self.replay_queue),
            "wrong_path": self.wrong_path,
            "wrong_path_pc": self._wrong_path_pc,
            "stall_until": self._stall_until,
            "next_seq": self._next_seq,
            "trace_exhausted": self.trace_exhausted,
            "fetched_correct": self.fetched_correct,
            "fetched_wrong": self.fetched_wrong,
        }

    def load_state_dict(self, state: dict, ctx) -> None:
        self.pipe = deque(
            (ready, ctx.uop(ref)) for ready, ref in state["pipe"])
        self._wp_groups = deque(list(g) for g in state["wp_groups"])
        self._wp_pending = state["wp_pending"]
        self.replay_queue = deque(ctx.uops(state["replay_queue"]))
        self.wrong_path = state["wrong_path"]
        self._wrong_path_pc = state["wrong_path_pc"]
        self._stall_until = state["stall_until"]
        self._next_seq = state["next_seq"]
        self.trace_exhausted = state["trace_exhausted"]
        self.fetched_correct = state["fetched_correct"]
        self.fetched_wrong = state["fetched_wrong"]
