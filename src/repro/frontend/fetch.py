"""Fetch stage and the frontend delay pipe.

Fetches up to ``fetch_width`` µops per cycle from a :class:`TraceSource`
(two 16-byte blocks, potentially across one taken branch: a *second*
predicted-taken branch ends the fetch group). Fetched µops travel through a
``frontend_depth``-cycle delay pipe before becoming visible to Rename —
this is the 15−D-cycle in-order frontend of Section 3.1, which shrinks as
the issue-to-execute delay D grows so the branch misprediction penalty
stays constant.

On a branch misprediction the stage switches to *wrong-path mode*: it stops
consuming the correct-path trace and injects synthetic wrong-path µops
(which consume rename/issue/execute resources and show up in the *Unique*
issued-µop counts, as in Figure 4b) until the branch resolves and
:meth:`redirect` is called.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.common.config import CoreConfig
from repro.common.stats import SimStats
from repro.frontend.branch_unit import BranchUnit
from repro.isa.trace import TraceSource
from repro.isa.uop import MicroOp

#: Cycles between branch resolution and the first re-fetched µop. Together
#: with the constant frontend_depth + D = 15 sum, this keeps the minimum
#: misprediction penalty constant (~20 cycles) across delay configurations.
REDIRECT_BUBBLE = 2


class FetchStage:
    """In-order fetch + frontend delay pipe."""

    def __init__(self, trace: TraceSource, branch_unit: BranchUnit,
                 config: CoreConfig, stats: SimStats) -> None:
        self.trace = trace
        self.branch_unit = branch_unit
        self.config = config
        self.stats = stats
        self.width = config.fetch_width
        self.depth = config.frontend_depth
        # (ready_cycle, uop) in fetch order.
        self.pipe: Deque[Tuple[int, MicroOp]] = deque()
        # Correct-path µops to re-fetch after a memory-order violation.
        self.replay_queue: Deque[MicroOp] = deque()
        self.wrong_path = False
        self._wrong_path_pc = 0
        self._stall_until = 0
        self._next_seq = 0
        self.trace_exhausted = False
        self.fetched_correct = 0
        self.fetched_wrong = 0

    # ------------------------------------------------------------------

    def tick(self, now: int) -> None:
        """Fetch one group of µops."""
        if now < self._stall_until:
            return
        taken_seen = 0
        for _ in range(self.width):
            uop = self._next(now)
            if uop is None:
                return
            uop.fetch_cycle = now
            uop.seq = self._next_seq
            self._next_seq += 1
            if uop.is_branch and not uop.wrong_path:
                pred_taken, pred_target = self.branch_unit.predict(uop)
                uop.pred_taken = pred_taken
                uop.pred_target = pred_target
                uop.mispredicted = (pred_taken != uop.taken) or (
                    uop.taken and pred_target != uop.target)
                if uop.mispredicted:
                    self.wrong_path = True
                    self._wrong_path_pc = (uop.pred_target if pred_taken
                                           else uop.pc + 1)
            self.pipe.append((now + self.depth, uop))
            if uop.wrong_path:
                self.fetched_wrong += 1
            else:
                self.fetched_correct += 1
            if uop.is_branch and uop.pred_taken:
                taken_seen += 1
                if taken_seen >= 2:
                    return
            if uop.is_branch and uop.mispredicted:
                # The rest of this group comes from the wrong path next cycle.
                return

    def deliver(self, now: int, max_uops: int) -> List[MicroOp]:
        """µops whose frontend traversal completes by ``now`` (for Rename)."""
        out: List[MicroOp] = []
        while self.pipe and len(out) < max_uops:
            ready, uop = self.pipe[0]
            if ready > now:
                break
            self.pipe.popleft()
            out.append(uop)
        return out

    def undeliver(self, uops: List[MicroOp], now: int) -> None:
        """Push back µops Rename could not accept this cycle (stall)."""
        for uop in reversed(uops):
            self.pipe.appendleft((now, uop))

    # ------------------------------------------------------------------

    def redirect(self, now: int) -> None:
        """Resolve a mispredicted branch: flush and restart fetch.

        The caller (the core) squashes younger µops everywhere else; here we
        drop everything still inside the frontend, which is by construction
        younger than the resolving branch.
        """
        self.pipe.clear()
        self.wrong_path = False
        self._stall_until = now + REDIRECT_BUBBLE
        self.stats.bump("fetch_redirects")

    def squash_all(self, now: int) -> None:
        """Full frontend flush (memory-order violation refetch)."""
        self.redirect(now)

    def inject_refetch(self, uops_in_program_order: List[MicroOp]) -> None:
        """Queue squashed correct-path µops for re-fetch (violations).

        New clones are older in program order than anything not yet fetched,
        so they go to the *front* of the replay queue.
        """
        for uop in reversed(uops_in_program_order):
            self.replay_queue.appendleft(uop)

    @property
    def done(self) -> bool:
        """True when the trace is exhausted and the pipe has drained."""
        return (self.trace_exhausted and not self.pipe
                and not self.wrong_path and not self.replay_queue)

    # ------------------------------------------------------------------

    def _next(self, now: int) -> Optional[MicroOp]:
        if self.wrong_path:
            uop = self.trace.wrong_path_uop(0, self._wrong_path_pc)
            uop.wrong_path = True
            self._wrong_path_pc += 1
            return uop
        if self.replay_queue:
            return self.replay_queue.popleft()
        uop = self.trace.next_uop()
        if uop is None:
            self.trace_exhausted = True
            return None
        return uop
