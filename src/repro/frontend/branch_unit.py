"""Branch unit: combines TAGE-lite, the BTB and the RAS.

Prediction happens at fetch; training happens at branch resolution (the
Execute stage). Each predicted branch carries a ``bp_state`` blob (TAGE
provider info + history/RAS snapshots) so a misprediction can repair the
speculative frontend state.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.config import BranchPredictorConfig
from repro.frontend.btb import Btb
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.tage import STATE_HISTORY, TageLite
from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp


class BranchUnit:
    """Frontend branch prediction state machine."""

    def __init__(self, config: Optional[BranchPredictorConfig] = None) -> None:
        self.config = config or BranchPredictorConfig()
        self.tage = TageLite(self.config)
        self.btb = Btb(self.config.btb_entries, self.config.btb_ways)
        self.ras = ReturnAddressStack(self.config.ras_entries)
        self.lookups = 0

    def predict(self, uop: MicroOp) -> Tuple[bool, int]:
        """Predict direction and target for a branch µop at fetch.

        Returns ``(pred_taken, pred_target)`` and stashes recovery state
        on the µop as a ``(kind, component-state, ras-checkpoint)`` tuple.
        A BTB miss on a predicted-taken conditional demotes the prediction
        to not-taken (the frontend has no target to redirect to).
        """
        self.lookups += 1
        pc = uop.pc
        opclass = uop.opclass
        if opclass == OpClass.CALL:
            uop.bp_state = ("call", self.tage.snapshot_history(),
                            self.ras.snapshot())
            self.ras.push(pc + 1)
            target = self.btb.lookup(pc)
            return True, target if target is not None else uop.target

        if opclass == OpClass.RET:
            uop.bp_state = ("ret", self.tage.snapshot_history(),
                            self.ras.snapshot())
            return True, self.ras.pop()

        pred_taken, tage_state = self.tage.predict(pc)
        uop.bp_state = ("cond", tage_state, self.ras.snapshot())
        if not pred_taken:
            return False, pc + 1
        target = self.btb.lookup(pc)
        if target is None:
            # No target available: fall through; resolves as a mispredict
            # if the branch is actually taken.
            return False, pc + 1
        return True, target

    def resolve(self, uop: MicroOp) -> bool:
        """Train predictors when a branch executes; True if mispredicted."""
        state = uop.bp_state
        mispredicted = (uop.pred_taken != uop.taken) or (
            uop.taken and uop.pred_target != uop.target)
        if state is not None and state[0] == "cond":
            self.tage.update(uop.taken, state[1])
        if uop.taken:
            self.btb.install(uop.pc, uop.target)
        if mispredicted:
            self._repair(uop)
        return mispredicted

    def _repair(self, uop: MicroOp) -> None:
        """Restore speculative history/RAS to the post-branch state."""
        state = uop.bp_state
        if state is None:
            return
        kind, component, ras_snap = state
        self.ras.restore(ras_snap)
        if kind == "cond":
            self.tage.restore_history(component[STATE_HISTORY])
            # Re-apply the *actual* outcome to the history.
            self.tage._push_history(uop.taken)
        else:
            self.tage.restore_history(component)
        if kind == "call":
            self.ras.push(uop.pc + 1)
        elif kind == "ret":
            self.ras.pop()

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        return {
            "lookups": self.lookups,
            "tage": self.tage.state_dict(),
            "btb": self.btb.state_dict(),
            "ras": self.ras.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.lookups = state["lookups"]
        self.tage.load_state_dict(state["tage"])
        self.btb.load_state_dict(state["btb"])
        self.ras.load_state_dict(state["ras"])
