"""Branch unit: combines TAGE-lite, the BTB and the RAS.

Prediction happens at fetch; training happens at branch resolution (the
Execute stage). Each predicted branch carries a ``bp_state`` blob (TAGE
provider info + history/RAS snapshots) so a misprediction can repair the
speculative frontend state.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.config import BranchPredictorConfig
from repro.frontend.btb import Btb
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.tage import STATE_HISTORY, TageLite
from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp


class _WarmBranch:
    """Reusable µop stand-in for :meth:`BranchUnit.resolve_block`.

    :meth:`BranchUnit.predict` and :meth:`BranchUnit.resolve` read and
    write only these fields and never retain the object, so one shim can
    carry every branch of a warming block — skipping the ~40-slot
    :class:`MicroOp` construction per branch that dominates the scalar
    tier's branch cost.
    """

    __slots__ = ("pc", "opclass", "target", "taken",
                 "pred_taken", "pred_target", "bp_state")


class BranchUnit:
    """Frontend branch prediction state machine."""

    def __init__(self, config: Optional[BranchPredictorConfig] = None) -> None:
        self.config = config or BranchPredictorConfig()
        self.tage = TageLite(self.config)
        self.btb = Btb(self.config.btb_entries, self.config.btb_ways)
        self.ras = ReturnAddressStack(self.config.ras_entries)
        self.lookups = 0

    def predict(self, uop: MicroOp) -> Tuple[bool, int]:
        """Predict direction and target for a branch µop at fetch.

        Returns ``(pred_taken, pred_target)`` and stashes recovery state
        on the µop as a ``(kind, component-state, ras-checkpoint)`` tuple.
        A BTB miss on a predicted-taken conditional demotes the prediction
        to not-taken (the frontend has no target to redirect to).
        """
        self.lookups += 1
        pc = uop.pc
        opclass = uop.opclass
        if opclass == OpClass.CALL:
            uop.bp_state = ("call", self.tage.snapshot_history(),
                            self.ras.snapshot())
            self.ras.push(pc + 1)
            target = self.btb.lookup(pc)
            return True, target if target is not None else uop.target

        if opclass == OpClass.RET:
            uop.bp_state = ("ret", self.tage.snapshot_history(),
                            self.ras.snapshot())
            return True, self.ras.pop()

        pred_taken, tage_state = self.tage.predict(pc)
        uop.bp_state = ("cond", tage_state, self.ras.snapshot())
        if not pred_taken:
            return False, pc + 1
        target = self.btb.lookup(pc)
        if target is None:
            # No target available: fall through; resolves as a mispredict
            # if the branch is actually taken.
            return False, pc + 1
        return True, target

    def resolve(self, uop: MicroOp) -> bool:
        """Train predictors when a branch executes; True if mispredicted."""
        state = uop.bp_state
        mispredicted = (uop.pred_taken != uop.taken) or (
            uop.taken and uop.pred_target != uop.target)
        if state is not None and state[0] == "cond":
            self.tage.update(uop.taken, state[1])
        if uop.taken:
            self.btb.install(uop.pc, uop.target)
        if mispredicted:
            self._repair(uop)
        return mispredicted

    def resolve_block(self, pcs, opclasses, targets, takens,
                      cond_indices=None) -> None:
        """Batch predict+resolve for functional warming, in stream order.

        TAGE's speculative history makes every prediction depend on the
        previous branch, so the walk is sequential; the batch form's
        wins are skipping per-branch µop construction and, for
        conditionals, the RAS snapshot/restore round trip (a conditional
        never touches the RAS between predict and resolve, so repairing
        it to its own snapshot is a content no-op — calls/returns go
        through the full :meth:`predict`/:meth:`resolve` pair via a
        reusable shim). ``cond_indices``, when given, is the
        ``(idx_rows, tag_rows)`` pair of block-folded TAGE lookups
        (:func:`repro.pipeline.warming.engine.tage_fold_indices`), one
        row per conditional branch in order. ``opclasses`` may be raw
        ints (``OpClass`` is an ``IntEnum``). State and counter effects
        are identical to calling :meth:`predict` + :meth:`resolve` per
        branch µop.
        """
        shim = _WarmBranch()
        predict = self.predict
        resolve = self.resolve
        tage = self.tage
        tage_predict = tage.predict
        warm_predict = tage.warm_predict
        tage_update = tage.update
        restore_history = tage.restore_history
        push_history = tage._push_history
        call, ret = OpClass.CALL, OpClass.RET
        rows = iter(zip(*cond_indices)) if cond_indices is not None else None
        lookups = 0
        # The BTB is inlined against its internals (exact lookup/install
        # semantics incl. hit/miss/stamp accounting); its counters live
        # in locals and are synced around the call/ret path, which goes
        # through the real methods.
        btb = self.btb
        btb_sets = btb._sets
        btb_num_sets = btb.num_sets
        btb_ways = btb.ways
        btb_stamp = btb._stamp
        btb_hits = 0
        btb_misses = 0
        for pc, opclass, target, taken in zip(pcs, opclasses, targets, takens):
            if opclass == call or opclass == ret:
                btb._stamp = btb_stamp
                btb.hits += btb_hits
                btb.misses += btb_misses
                btb_hits = btb_misses = 0
                shim.pc = pc
                shim.opclass = opclass
                shim.target = target
                shim.taken = taken
                shim.bp_state = None
                shim.pred_taken, shim.pred_target = predict(shim)
                resolve(shim)
                btb_stamp = btb._stamp
                continue
            lookups += 1
            if rows is None:
                pred_taken, tage_state = tage_predict(pc)
            else:
                idxs, tags = next(rows)
                pred_taken, tage_state = warm_predict(pc, idxs, tags)
            tage_pred = pred_taken
            if pred_taken:
                btb_set = btb_sets[(pc >> 2) % btb_num_sets]
                entry = btb_set.get(pc)
                if entry is None:             # BTB miss: demote (predict)
                    btb_misses += 1
                    pred_taken, pred_target = False, pc + 1
                else:
                    btb_hits += 1
                    btb_stamp += 1
                    pred_target = entry[0]
                    btb_set[pc] = (pred_target, btb_stamp)
            else:
                pred_target = pc + 1
            mispredicted = (pred_taken != taken) or (
                taken and pred_target != target)
            tage_update(taken, tage_state)
            if taken:                         # install()
                btb_set = btb_sets[(pc >> 2) % btb_num_sets]
                btb_stamp += 1
                if pc not in btb_set and len(btb_set) >= btb_ways:
                    victim = min(btb_set, key=lambda key: btb_set[key][1])
                    del btb_set[victim]
                btb_set[pc] = (target, btb_stamp)
            if mispredicted:                  # _repair, minus the RAS no-op
                restore_history(tage_state[STATE_HISTORY])
                push_history(taken)
            elif tage_pred != taken:
                # A BTB-demoted taken prediction that came true as
                # not-taken: no repair fires, so the history keeps the
                # TAGE *direction*, not the outcome — the one case where
                # block-folded indices (which assume outcome history) go
                # stale. Finish the block on the self-folding predict.
                rows = None
        btb._stamp = btb_stamp
        btb.hits += btb_hits
        btb.misses += btb_misses
        self.lookups += lookups

    def _repair(self, uop: MicroOp) -> None:
        """Restore speculative history/RAS to the post-branch state."""
        state = uop.bp_state
        if state is None:
            return
        kind, component, ras_snap = state
        self.ras.restore(ras_snap)
        if kind == "cond":
            self.tage.restore_history(component[STATE_HISTORY])
            # Re-apply the *actual* outcome to the history.
            self.tage._push_history(uop.taken)
        else:
            self.tage.restore_history(component)
        if kind == "call":
            self.ras.push(uop.pc + 1)
        elif kind == "ret":
            self.ras.pop()

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        return {
            "lookups": self.lookups,
            "tage": self.tage.state_dict(),
            "btb": self.btb.state_dict(),
            "ras": self.ras.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.lookups = state["lookups"]
        self.tage.load_state_dict(state["tage"])
        self.btb.load_state_dict(state["btb"])
        self.ras.load_state_dict(state["ras"])
