"""Branch target buffer — 2-way, 8K entries (Table 1)."""

from __future__ import annotations

from typing import Dict, List, Optional


class Btb:
    """Set-associative BTB with LRU within each set."""

    def __init__(self, entries: int = 8192, ways: int = 2) -> None:
        if entries % ways != 0:
            raise ValueError("BTB entries must divide evenly into ways")
        self.entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        # per-set dict: pc -> (target, lru_stamp)
        self._sets: List[Dict[int, tuple]] = [dict() for _ in range(self.num_sets)]
        self._stamp = 0
        self.hits = 0
        self.misses = 0

    def _set_of(self, pc: int) -> Dict[int, tuple]:
        return self._sets[(pc >> 2) % self.num_sets]

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target for a branch at ``pc``, or None on a BTB miss."""
        entry = self._set_of(pc).get(pc)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._stamp += 1
        target = entry[0]
        self._set_of(pc)[pc] = (target, self._stamp)
        return target

    def install(self, pc: int, target: int) -> None:
        """Record (or refresh) a taken branch's target."""
        btb_set = self._set_of(pc)
        self._stamp += 1
        if pc not in btb_set and len(btb_set) >= self.ways:
            victim = min(btb_set, key=lambda key: btb_set[key][1])
            del btb_set[victim]
        btb_set[pc] = (target, self._stamp)

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        return {
            "sets": [list(s.items()) for s in self._sets],
            "stamp": self._stamp,
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state_dict(self, state: dict) -> None:
        for btb_set, items in zip(self._sets, state["sets"]):
            btb_set.clear()
            for pc, entry in items:
                btb_set[pc] = tuple(entry)
        self._stamp = state["stamp"]
        self.hits = state["hits"]
        self.misses = state["misses"]
