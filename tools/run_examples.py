#!/usr/bin/env python3
"""Examples smoke runner for the `docs` CI job.

Executes every ``examples/*.py`` script in a subprocess (repository
root as cwd, ``src`` on ``PYTHONPATH``) and fails if any exits
non-zero — the executable-documentation guarantee: an example that no
longer runs against the current APIs is a doc bug this job catches.

Environment: honours the caller's ``REPRO_*`` variables (CI points
``REPRO_CACHE_DIR`` at a job-local tmpdir). Pass example names (without
directory) to run a subset::

    python tools/run_examples.py             # all
    python tools/run_examples.py quickstart.py sampling.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES_DIR = REPO_ROOT / "examples"

#: Per-example wall-clock ceiling (seconds): generous, but a hang must
#: fail the job rather than stall it.
TIMEOUT = 1200


def run_example(path: Path) -> int:
    """Run one example; returns its exit status (124 on timeout)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    start = time.perf_counter()
    try:
        proc = subprocess.run(
            [sys.executable, str(path)], cwd=REPO_ROOT, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            timeout=TIMEOUT)
        status = proc.returncode
        tail = proc.stdout.decode(errors="replace").splitlines()[-15:]
    except subprocess.TimeoutExpired:
        status, tail = 124, [f"(timed out after {TIMEOUT}s)"]
    elapsed = time.perf_counter() - start
    verdict = "ok" if status == 0 else f"FAIL ({status})"
    print(f"{path.name:28s} {verdict:10s} {elapsed:7.1f}s", flush=True)
    if status != 0:
        for line in tail:
            print(f"    {line}")
    return status


def main(argv: List[str]) -> int:
    """Run the requested examples (all of ``examples/*.py`` by default)."""
    if argv:
        paths = [EXAMPLES_DIR / name for name in argv]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(f"no such example(s): "
                  f"{', '.join(p.name for p in missing)}", file=sys.stderr)
            return 2
    else:
        paths = sorted(EXAMPLES_DIR.glob("*.py"))
    failures = sum(1 for path in paths if run_example(path) != 0)
    print(f"{len(paths) - failures}/{len(paths)} examples passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
