#!/usr/bin/env python3
"""Markdown link/anchor checker for the `docs` CI job (stdlib only).

Checks every markdown file passed (files or directories, recursed) for:

* relative links to files that do not exist;
* intra- and cross-document anchors (``#fragment``) that match no
  heading in the target document (GitHub-style slugs, including the
  ``-1`` suffixes for duplicate headings) and no explicit
  ``<a name=...>`` / ``id=...`` anchor;
* external links are **not** fetched (CI must not depend on the
  network) — only syntax-checked.

Exit status: 0 clean, 1 with one ``file:line: message`` per problem.

Usage::

    python tools/check_links.py README.md docs
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: [text](target) — excluding images' leading "!" is unnecessary: image
#: targets must exist too.
LINK_RE = re.compile(r"\[[^\]\[]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
EXPLICIT_ANCHOR_RE = re.compile(
    r"""<a\s+(?:name|id)\s*=\s*["']([^"']+)["']""", re.IGNORECASE)
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (close-enough approximation:
    strip markdown emphasis/code markers and punctuation, lowercase,
    spaces to hyphens)."""
    text = re.sub(r"[`*_]", "", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)   # linked headings
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def document_anchors(path: Path) -> set:
    """Every anchor a markdown document exposes (heading slugs with
    duplicate ``-N`` suffixes, plus explicit HTML anchors)."""
    anchors = set()
    seen: Dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            slug = github_slug(match.group(2))
            count = seen.get(slug, 0)
            seen[slug] = count + 1
            anchors.add(slug if count == 0 else f"{slug}-{count}")
        for explicit in EXPLICIT_ANCHOR_RE.findall(line):
            anchors.add(explicit)
    return anchors


def iter_links(path: Path) -> List[Tuple[int, str]]:
    """(line number, target) for every markdown link outside code fences."""
    links = []
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def check_file(path: Path, anchor_cache: Dict[Path, set]) -> List[str]:
    """Problems for one markdown file, as ``file:line: message`` lines."""
    problems = []
    for lineno, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            dest = (path.parent / file_part).resolve()
            if not dest.exists():
                problems.append(
                    f"{path}:{lineno}: broken link target {file_part!r}")
                continue
        else:
            dest = path.resolve()
        if fragment:
            if dest.suffix.lower() not in (".md", ".markdown"):
                continue            # fragments into non-markdown: skip
            if dest not in anchor_cache:
                anchor_cache[dest] = document_anchors(dest)
            if fragment not in anchor_cache[dest]:
                problems.append(
                    f"{path}:{lineno}: no anchor {fragment!r} in "
                    f"{dest.name}")
    return problems


def main(argv: List[str]) -> int:
    """Check every markdown file under the given files/directories."""
    roots = [Path(arg) for arg in argv] or [Path(".")]
    files: List[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.md")))
        else:
            files.append(root)
    anchor_cache: Dict[Path, set] = {}
    problems = []
    for path in files:
        problems.extend(check_file(path, anchor_cache))
    for problem in problems:
        print(problem)
    print(f"checked {len(files)} file(s): "
          f"{'OK' if not problems else f'{len(problems)} problem(s)'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
